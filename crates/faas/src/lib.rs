//! # faas — a serverless (AWS-Lambda-like) platform simulator
//!
//! The compute substrate of the Crucial reproduction: user code is deployed
//! as named functions ([`FunctionRegistry`]); clients invoke them
//! synchronously ([`FaasHandle::invoke`], the paper's `RequestResponse`
//! mode); the platform manages warm/cold containers, scales CPU with the
//! configured memory (footnote 7), enforces a concurrency limit and the
//! 15-minute cap, injects failures on demand, and bills GB-seconds at AWS
//! prices for the Table 3 cost experiments.
//!
//! ## Example
//!
//! ```
//! use simcore::Sim;
//! use faas::{spawn_platform, FaasConfig, FunctionRegistry, FnCtx};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(5);
//! let registry = FunctionRegistry::new();
//! registry.register("double", 1792, |env: &mut FnCtx<'_>, payload: Vec<u8>| {
//!     env.compute(Duration::from_millis(50));
//!     Ok(payload.iter().map(|b| b * 2).collect())
//! });
//! let faas = spawn_platform(&sim, FaasConfig::default(), registry);
//!
//! sim.spawn("client", move |ctx| {
//!     let out = faas.invoke(ctx, "double", vec![1, 2, 3]).expect("ok");
//!     assert_eq!(out, vec![2, 4, 6]);
//! });
//! sim.run_until_idle().expect_quiescent();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod billing;
mod config;
mod function;
mod platform;

pub use billing::{
    Billing, InvocationRecord, Pricing, RetirementRecord, SnapshotRecord, StartKind,
};
pub use config::{
    ColdStartPolicy, FaasConfig, FaasConfigBuilder, FaasConfigError, SnapshotConfig,
    SNAPSHOT_PAGE_BYTES,
};
pub use function::{
    cpu_share_for, CloudFunction, FnCtx, FunctionRegistry, FunctionSpec, FULL_VCPU_MB,
};
pub use platform::{
    spawn_platform, FaasError, FaasHandle, InvokeFn, InvokeForked, InvokeOpts, InvokeResult,
    SetProvisioned,
};

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simcore::{Sim, SimTime};
    use std::sync::Arc;
    use std::time::Duration;

    fn echo_registry() -> FunctionRegistry {
        let reg = FunctionRegistry::new();
        reg.register("echo", 1792, |_env: &mut FnCtx<'_>, p: Vec<u8>| Ok(p));
        reg.register("sleepy", 1792, |env: &mut FnCtx<'_>, p: Vec<u8>| {
            env.compute(Duration::from_millis(100));
            Ok(p)
        });
        reg
    }

    #[test]
    fn cold_then_warm_invocations() {
        let mut sim = Sim::new(1);
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            let t0 = ctx.now();
            let out = f2.invoke(ctx, "echo", vec![7]).expect("ok");
            assert_eq!(out, vec![7]);
            let cold_time = ctx.now() - t0;
            assert!(cold_time > Duration::from_millis(1000), "cold start: {cold_time:?}");
            let t0 = ctx.now();
            let _ = f2.invoke(ctx, "echo", vec![8]).expect("ok");
            let warm_time = ctx.now() - t0;
            assert!(warm_time < Duration::from_millis(60), "warm invoke: {warm_time:?}");
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().invocations(), 2);
        assert_eq!(faas.billing().cold_starts(), 1);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let mut sim = Sim::new(2);
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        sim.spawn("client", move |ctx| {
            let err = faas.invoke(ctx, "nope", vec![]).unwrap_err();
            assert!(matches!(err, FaasError::UnknownFunction(_)));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn parallel_invocations_scale_out() {
        let mut sim = Sim::new(3);
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        let latest = Arc::new(Mutex::new(SimTime::ZERO));
        for i in 0..50 {
            let faas = faas.clone();
            let latest = latest.clone();
            sim.spawn(&format!("c{i}"), move |ctx| {
                let _ = faas.invoke(ctx, "sleepy", vec![]).expect("ok");
                let mut g = latest.lock();
                if ctx.now() > *g {
                    *g = ctx.now();
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        // 50 concurrent 100ms functions behind cold starts: all finish in
        // ~1 cold start + 100ms, not 50x sequentially.
        assert!(*latest.lock() < SimTime::from_millis(2500), "{}", *latest.lock());
    }

    #[test]
    fn concurrency_limit_queues_invocations() {
        let mut sim = Sim::new(4);
        let cfg = FaasConfig::builder().concurrency_limit(1).build().expect("valid");
        let faas = spawn_platform(&sim, cfg, echo_registry());
        let latest = Arc::new(Mutex::new(SimTime::ZERO));
        for i in 0..4 {
            let faas = faas.clone();
            let latest = latest.clone();
            sim.spawn(&format!("c{i}"), move |ctx| {
                let _ = faas.invoke(ctx, "sleepy", vec![]).expect("ok");
                let mut g = latest.lock();
                if ctx.now() > *g {
                    *g = ctx.now();
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        // 4 x 100ms serialized (plus one cold start) ≥ 400ms.
        assert!(
            *latest.lock() > SimTime::from_millis(400),
            "limit=1 must serialize: {}",
            *latest.lock()
        );
    }

    #[test]
    fn memory_scales_compute_time() {
        let mut sim = Sim::new(5);
        let reg = FunctionRegistry::new();
        reg.register("half", 896, |env: &mut FnCtx<'_>, _| {
            env.compute(Duration::from_millis(100));
            Ok(Vec::new())
        });
        reg.register("full", 1792, |env: &mut FnCtx<'_>, _| {
            env.compute(Duration::from_millis(100));
            Ok(Vec::new())
        });
        let faas = spawn_platform(&sim, FaasConfig::default(), reg);
        let out = Arc::new(Mutex::new((Duration::ZERO, Duration::ZERO)));
        let out2 = out.clone();
        sim.spawn("client", move |ctx| {
            // Warm both.
            let _ = faas.invoke(ctx, "half", vec![]);
            let _ = faas.invoke(ctx, "full", vec![]);
            let t0 = ctx.now();
            let _ = faas.invoke(ctx, "half", vec![]);
            let half = ctx.now() - t0;
            let t0 = ctx.now();
            let _ = faas.invoke(ctx, "full", vec![]);
            let full = ctx.now() - t0;
            *out2.lock() = (half, full);
        });
        sim.run_until_idle().expect_quiescent();
        let (half, full) = *out.lock();
        let dcompute = half.as_secs_f64() - full.as_secs_f64();
        assert!(
            (dcompute - 0.1).abs() < 0.03,
            "896MB should pay ~100ms extra compute, paid {dcompute}s"
        );
    }

    #[test]
    fn provisioned_concurrency_prewarms_and_skips_cold_starts() {
        let mut sim = Sim::new(21);
        let registry = simcore::MetricsRegistry::new();
        sim.set_metrics(&registry);
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            let none = f2.invoke_with(ctx, "echo", Vec::new(), InvokeOpts::provision(3));
            assert!(none.is_empty(), "a pure control action returns no results");
            // Give the pre-warms time to boot (cold start ≈ 1–2 s).
            ctx.sleep(Duration::from_secs(3));
            for i in 0..3 {
                let t0 = ctx.now();
                let _ = f2.invoke(ctx, "echo", vec![i]).expect("ok");
                let warm_time = ctx.now() - t0;
                assert!(
                    warm_time < Duration::from_millis(60),
                    "pre-warmed invoke {i} must not pay a cold start: {warm_time:?}"
                );
            }
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().cold_starts(), 0, "no invoker paid a cold start");
        assert_eq!(registry.counter_value("faas.prewarms"), 3);
        assert!(
            !registry.series("faas.pool_size").points().is_empty(),
            "pool dynamics must be observable"
        );
    }

    #[test]
    fn idle_containers_are_retired_with_billing_and_floor() {
        let mut sim = Sim::new(22);
        let registry = simcore::MetricsRegistry::new();
        sim.set_metrics(&registry);
        let cfg = FaasConfig::builder()
            .container_idle_timeout(Duration::from_secs(5))
            .build()
            .expect("valid");
        let faas = spawn_platform(&sim, cfg, echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            // Build a pool of 4 via the provisioning path.
            let _ = f2.invoke_with(ctx, "echo", Vec::new(), InvokeOpts::provision(4));
            ctx.sleep(Duration::from_secs(3));
            // Drop the floor to 1 and let the pool sit past the timeout.
            let _ = f2.invoke_with(ctx, "echo", Vec::new(), InvokeOpts::provision(1));
            ctx.sleep(Duration::from_secs(10));
            // Next dispatch reaps lazily: 3 expire, the floor keeps 1.
            let _ = f2.invoke(ctx, "echo", vec![1]).expect("ok");
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().retirements(), 3, "pool of 4, floor 1");
        assert!(faas.billing().idle_gb_seconds() > 0.0, "idle tail is billed");
        assert_eq!(registry.counter_value("faas.retirements"), 3);
    }

    fn snapshot_cfg(policy: ColdStartPolicy) -> FaasConfig {
        FaasConfig::builder()
            .cold_start_policy(policy)
            .snapshot(SnapshotConfig::default())
            .container_idle_timeout(Duration::from_secs(5))
            .build()
            .expect("valid snapshot-tier config")
    }

    #[test]
    fn snapshot_restore_collapses_the_second_cold_start() {
        let mut sim = Sim::new(31);
        let faas =
            spawn_platform(&sim, snapshot_cfg(ColdStartPolicy::SnapshotRestore), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            // First cold start provisions classically and snapshots.
            let t0 = ctx.now();
            let _ = f2.invoke(ctx, "echo", vec![1]).expect("ok");
            assert!(ctx.now() - t0 > Duration::from_millis(1000), "first start is classic");
            // Let the container idle out, then cold-start again: the
            // snapshot restore replaces the 1.5 s provision.
            ctx.sleep(Duration::from_secs(10));
            let t0 = ctx.now();
            let _ = f2.invoke(ctx, "echo", vec![2]).expect("ok");
            let restored = ctx.now() - t0;
            assert!(
                restored > Duration::from_millis(120) && restored < Duration::from_millis(400),
                "restore should cost ~150–250 ms plus dispatch, took {restored:?}"
            );
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().restores(), 1);
        assert_eq!(faas.billing().cold_starts(), 1, "only the first start was classic");
        assert_eq!(faas.billing().snapshots_taken(), 1);
    }

    #[test]
    fn fork_fans_out_in_order_at_fork_latencies() {
        let mut sim = Sim::new(32);
        let faas = spawn_platform(&sim, snapshot_cfg(ColdStartPolicy::Fork), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            // Warm a parent (classic boot + snapshot capture).
            let _ = f2.invoke(ctx, "echo", vec![0]).expect("ok");
            let t0 = ctx.now();
            let results = f2.invoke_forked(ctx, "echo", vec![vec![1], vec![2], vec![3]]);
            let took = ctx.now() - t0;
            assert_eq!(results.len(), 3);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.as_deref().expect("branch ok"), &[i as u8 + 1], "payload order");
            }
            assert!(
                took < Duration::from_millis(120),
                "3 CoW branches off a warm parent cost ~10–50 ms each in \
                 parallel, not a provision: {took:?}"
            );
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().forks(), 3);
        assert_eq!(faas.billing().invocations(), 4);
    }

    #[test]
    fn fork_with_no_warm_parent_provisions_one_first() {
        let mut sim = Sim::new(33);
        let faas = spawn_platform(&sim, snapshot_cfg(ColdStartPolicy::Fork), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            let t0 = ctx.now();
            let results = f2.invoke_forked(ctx, "echo", vec![vec![1], vec![2]]);
            let took = ctx.now() - t0;
            assert!(results.iter().all(Result::is_ok));
            assert!(
                took > Duration::from_millis(1000),
                "no snapshot yet: the parent pays a classic provision first, {took:?}"
            );
            // The parent joined the pool and its boot captured a
            // snapshot; a second fan-out is pure fork latency.
            let t0 = ctx.now();
            let results = f2.invoke_forked(ctx, "echo", vec![vec![3], vec![4]]);
            let took = ctx.now() - t0;
            assert!(results.iter().all(Result::is_ok));
            assert!(took < Duration::from_millis(120), "warm parent: {took:?}");
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().forks(), 4);
        assert_eq!(faas.billing().snapshots_taken(), 1);
    }

    #[test]
    fn fork_on_a_non_fork_function_is_a_typed_error() {
        let mut sim = Sim::new(34);
        // Classic platform: every policy clamps to Classic.
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            let results = f2.invoke_forked(ctx, "echo", vec![vec![1], vec![2]]);
            assert_eq!(results.len(), 2);
            for r in results {
                assert!(
                    matches!(r, Err(FaasError::ForkUnsupported(ref f)) if f == "echo"),
                    "{r:?}"
                );
            }
            let results = f2.invoke_forked(ctx, "nope", vec![vec![1]]);
            assert!(matches!(results[0], Err(FaasError::UnknownFunction(_))));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn invoke_with_runs_a_batch_in_payload_order() {
        let mut sim = Sim::new(35);
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            let results =
                f2.invoke_with(ctx, "echo", vec![vec![9], vec![8]], InvokeOpts::default());
            assert_eq!(results.len(), 2);
            assert_eq!(results[0].as_deref().unwrap(), &[9]);
            assert_eq!(results[1].as_deref().unwrap(), &[8]);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_set_provisioned_still_prewarms() {
        let mut sim = Sim::new(36);
        let registry = simcore::MetricsRegistry::new();
        sim.set_metrics(&registry);
        let faas = spawn_platform(&sim, FaasConfig::default(), echo_registry());
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            f2.set_provisioned(ctx, "echo", 2);
            ctx.sleep(Duration::from_secs(3));
            let _ = f2.invoke(ctx, "echo", vec![1]).expect("ok");
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(registry.counter_value("faas.prewarms"), 2);
        assert_eq!(faas.billing().cold_starts(), 0);
    }

    #[test]
    fn failure_injection_fails_some_invocations() {
        let mut sim = Sim::new(6);
        let cfg = FaasConfig::builder().failure_rate(0.5).build().expect("valid");
        let faas = spawn_platform(&sim, cfg, echo_registry());
        let failures = Arc::new(Mutex::new(0usize));
        let f2 = failures.clone();
        sim.spawn("client", move |ctx| {
            for _ in 0..40 {
                if faas.invoke(ctx, "echo", vec![]).is_err() {
                    *f2.lock() += 1;
                }
            }
        });
        sim.run_until_idle().expect_quiescent();
        let f = *failures.lock();
        assert!((8..=32).contains(&f), "≈50% of 40 invocations should fail, got {f}");
    }

    #[test]
    fn handler_errors_propagate() {
        let mut sim = Sim::new(7);
        let reg = FunctionRegistry::new();
        reg.register(
            "bad",
            1792,
            |_env: &mut FnCtx<'_>, _| Err("application exploded".to_string()),
        );
        let faas = spawn_platform(&sim, FaasConfig::default(), reg);
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| match f2.invoke(ctx, "bad", vec![]) {
            Err(FaasError::Failed(e)) => assert!(e.contains("exploded")),
            other => panic!("expected failure, got {other:?}"),
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(faas.billing().invocations(), 1);
    }

    #[test]
    fn timeout_cap_enforced() {
        let mut sim = Sim::new(8);
        let cfg =
            FaasConfig::builder().max_duration(Duration::from_millis(50)).build().expect("valid");
        let reg = FunctionRegistry::new();
        reg.register("forever", 1792, |env: &mut FnCtx<'_>, _| {
            env.compute(Duration::from_secs(10));
            Ok(Vec::new())
        });
        let faas = spawn_platform(&sim, cfg, reg);
        let f2 = faas.clone();
        sim.spawn("client", move |ctx| {
            let err = f2.invoke(ctx, "forever", vec![]).unwrap_err();
            assert_eq!(err, FaasError::TimedOut);
        });
        sim.run_until_idle().expect_quiescent();
        // Billed at most the cap.
        assert!(faas.billing().total_duration() <= Duration::from_millis(50));
    }
}
