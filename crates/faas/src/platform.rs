//! The invocation service: synchronous (`RequestResponse`) calls, a warm
//! container pool per function, a tiered cold-start model (classic
//! provisioning, snapshot restore, CoW forking), an account-wide
//! concurrency limit, failure injection, and billing.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Duration;

use rand::RngExt;
use simcore::{Addr, Ctx, Msg, Pid, Request, Sim, SimTime, SpanId, TraceCtx};

use crate::billing::{Billing, InvocationRecord, RetirementRecord, StartKind};
use crate::config::{ColdStartPolicy, FaasConfig};
use crate::function::{FnCtx, FunctionRegistry, FunctionSpec};

/// Client request: invoke `function` with `payload` synchronously.
#[derive(Debug)]
pub struct InvokeFn {
    /// Deployed function name.
    pub function: String,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
    /// Caller's trace span; the container parents its execution spans under
    /// it ([`SpanId::NONE`] when untraced).
    pub span: SpanId,
}

/// Client request: fan `payloads` out as copy-on-write branches of one
/// warm container of `function` (see
/// [`FaasHandle::invoke_forked`]). Replied with a
/// `Vec<`[`InvokeResult`]`>` in payload order.
#[derive(Debug)]
pub struct InvokeForked {
    /// Deployed function name (its effective policy must be
    /// [`ColdStartPolicy::Fork`]).
    pub function: String,
    /// One opaque payload per branch.
    pub payloads: Vec<Vec<u8>>,
    /// Caller's trace span.
    pub span: SpanId,
}

/// Invocation outcome delivered to the caller.
pub type InvokeResult = Result<Vec<u8>, FaasError>;

/// Errors surfaced to invokers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaasError {
    /// No such function is deployed.
    UnknownFunction(String),
    /// The handler failed (or failure injection fired).
    Failed(String),
    /// The invocation exceeded the platform's duration cap.
    TimedOut,
    /// The account's concurrency limit rejected the invocation.
    Throttled,
    /// `invoke_forked` was used on a function whose effective cold-start
    /// policy is not [`ColdStartPolicy::Fork`].
    ForkUnsupported(String),
}

impl std::fmt::Display for FaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaasError::UnknownFunction(n) => write!(f, "unknown function: {n}"),
            FaasError::Failed(e) => write!(f, "function failed: {e}"),
            FaasError::TimedOut => write!(f, "function timed out"),
            FaasError::Throttled => write!(f, "throttled by concurrency limit"),
            FaasError::ForkUnsupported(n) => {
                write!(f, "function not fork-enabled: {n}")
            }
        }
    }
}

impl std::error::Error for FaasError {}

// Platform-internal messages.
#[derive(Debug)]
struct Job {
    payload: Vec<u8>,
    reply_to: Addr,
    /// How the serving container starts for this job (`Warm` when it is
    /// already booted; the cold kinds make the container pay the
    /// corresponding boot before executing).
    start: StartKind,
    /// Platform-planned restore latency when `start == Restore` (base
    /// sample + dirtied-page faults).
    restore_cost: Duration,
    span: SpanId,
}

#[derive(Debug)]
struct ContainerFree {
    function: String,
    container: Addr,
}

/// A pre-warmed container finished booting and enters the warm pool.
/// Unlike [`ContainerFree`] it does *not* release a running slot — the
/// container never held one.
#[derive(Debug)]
struct WarmReady {
    function: String,
    container: Addr,
}

/// A snapshot-tier container finished a classic boot and captured a
/// memory snapshot; the platform caches it for later restores.
#[derive(Debug)]
struct SnapshotTaken {
    function: String,
    memory_mb: u32,
}

/// One branch of a forked invocation finished.
#[derive(Debug)]
struct BranchDone {
    index: usize,
    result: InvokeResult,
}

/// How a pre-warm-style container boots (floors and fork parents).
#[derive(Clone, Copy, Debug)]
enum BootPlan {
    /// Sample a classic provision inside the container (the provisioned
    /// -concurrency floor path).
    ClassicSampled,
    /// Boot with a platform-planned kind and cost (a snapshot restore,
    /// or the classic boot of a fork parent whose branches wait on it).
    Planned { kind: StartKind, cost: Duration },
}

/// Control-plane request: keep (at least) `n` warm containers provisioned
/// for `function`. The platform boots the shortfall immediately (off the
/// request path, so nobody waits on these cold starts) and exempts the
/// floor from idle reclamation. Lowering `n` lets the surplus age out
/// through the normal idle timeout.
#[derive(Debug)]
pub struct SetProvisioned {
    /// Deployed function name.
    pub function: String,
    /// Number of warm containers to keep provisioned.
    pub n: u32,
}

/// Options for [`FaasHandle::invoke_with`] — the single entrypoint that
/// plain, provisioned, and forked invocation share.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvokeOpts {
    /// Fan the payloads out as CoW branches of one warm container
    /// ([`InvokeForked`]) instead of invoking them independently.
    /// Requires the function's effective policy to be
    /// [`ColdStartPolicy::Fork`].
    pub forked: bool,
    /// Set the provisioned-concurrency floor for the function before
    /// invoking (the [`SetProvisioned`] control message; fire-and-forget).
    pub provision: Option<u32>,
}

impl InvokeOpts {
    /// Options for a forked fan-out invocation.
    pub fn forked() -> InvokeOpts {
        InvokeOpts { forked: true, ..InvokeOpts::default() }
    }

    /// Options that only adjust the provisioned-concurrency floor
    /// (combine with empty payloads for a pure control action).
    pub fn provision(n: u32) -> InvokeOpts {
        InvokeOpts { provision: Some(n), ..InvokeOpts::default() }
    }
}

/// Handle to a running platform.
#[derive(Clone, Debug)]
pub struct FaasHandle {
    addr: Addr,
    billing: Billing,
    cfg: FaasConfig,
}

impl FaasHandle {
    /// The unified invocation entrypoint: invokes `function` once per
    /// payload, after applying `opts` (floor adjustment, fork fan-out).
    /// Results come back in payload order. With empty `payloads` only the
    /// control action runs and the call does not block.
    ///
    /// [`invoke`](Self::invoke) and [`invoke_forked`](Self::invoke_forked)
    /// are thin sugar over this.
    pub fn invoke_with(
        &self,
        ctx: &mut Ctx,
        function: &str,
        payloads: Vec<Vec<u8>>,
        opts: InvokeOpts,
    ) -> Vec<InvokeResult> {
        if let Some(n) = opts.provision {
            let lat = self.cfg.warm_dispatch.sample(ctx.rng());
            ctx.send(
                self.addr,
                Msg::new(SetProvisioned { function: function.to_string(), n }),
                lat,
            );
        }
        if payloads.is_empty() {
            return Vec::new();
        }
        if opts.forked {
            let lat = self.cfg.warm_dispatch.sample(ctx.rng());
            ctx.annotate_wait(
                wait_resource(function),
                simcore::WaitKind::Call,
                function,
                format!("FaasHandle::invoke_forked {function}"),
            );
            let span = ctx.span_begin("faas.invoke_forked", "faas");
            ctx.span_annotate(span, "function", function);
            ctx.span_annotate(span, "fanout", payloads.len().to_string());
            let results: Vec<InvokeResult> = ctx.call(
                self.addr,
                InvokeForked { function: function.to_string(), payloads, span },
                lat,
            );
            ctx.span_end(span);
            results
        } else {
            payloads.into_iter().map(|p| self.invoke_one(ctx, function, p)).collect()
        }
    }

    /// Synchronously invokes a function (AWS `RequestResponse` mode); blocks
    /// until the function returns. Retries are the *caller's* decision,
    /// exactly as the paper argues (§4.4). Sugar for
    /// [`invoke_with`](Self::invoke_with) with one payload and default
    /// options.
    pub fn invoke(&self, ctx: &mut Ctx, function: &str, payload: Vec<u8>) -> InvokeResult {
        self.invoke_with(ctx, function, vec![payload], InvokeOpts::default())
            .pop()
            .expect("one payload yields one result")
    }

    /// Fans `payloads` out as copy-on-write branches of one warm
    /// container of `function` — the snapshot tier's burst primitive
    /// (~10–50 ms per branch instead of a provision each). The parent is
    /// restored (or classically provisioned) first if no warm container
    /// exists; branches bypass the account concurrency limit. Sugar for
    /// [`invoke_with`](Self::invoke_with) with [`InvokeOpts::forked`].
    ///
    /// Functions whose effective policy is not [`ColdStartPolicy::Fork`]
    /// answer every branch with [`FaasError::ForkUnsupported`].
    pub fn invoke_forked(
        &self,
        ctx: &mut Ctx,
        function: &str,
        payloads: Vec<Vec<u8>>,
    ) -> Vec<InvokeResult> {
        self.invoke_with(ctx, function, payloads, InvokeOpts::forked())
    }

    /// The plain invocation path shared by [`invoke_with`](Self::invoke_with):
    /// one payload, one synchronous call.
    fn invoke_one(&self, ctx: &mut Ctx, function: &str, payload: Vec<u8>) -> InvokeResult {
        let lat = self.cfg.warm_dispatch.sample(ctx.rng());
        // A synchronous invoke can park indefinitely (the function may
        // itself block on shared objects); tell the deadlock detector
        // which function this caller is waiting on.
        ctx.annotate_wait(
            wait_resource(function),
            simcore::WaitKind::Call,
            function,
            format!("FaasHandle::invoke {function}"),
        );
        let span = ctx.span_begin("faas.invoke", "faas");
        ctx.span_annotate(span, "function", function);
        let result: InvokeResult =
            ctx.call(self.addr, InvokeFn { function: function.to_string(), payload, span }, lat);
        if let Err(e) = &result {
            ctx.span_annotate(span, "error", e.to_string());
        }
        ctx.span_end(span);
        result
    }

    /// Sets the provisioned-concurrency floor for `function`: the platform
    /// keeps at least `n` warm containers, booting the shortfall now (off
    /// the request path) and exempting the floor from idle reclamation.
    /// Fire-and-forget — the pre-warms complete asynchronously; watch the
    /// `faas.pool_size` series for the effect.
    #[deprecated(note = "use invoke_with with InvokeOpts::provision(n) and empty payloads")]
    pub fn set_provisioned(&self, ctx: &mut Ctx, function: &str, n: u32) {
        let _ = self.invoke_with(ctx, function, Vec::new(), InvokeOpts::provision(n));
    }

    /// The shared billing ledger.
    pub fn billing(&self) -> &Billing {
        &self.billing
    }

    /// The platform configuration.
    pub fn config(&self) -> &FaasConfig {
        &self.cfg
    }
}

/// Deadlock-detector resource id for a function name (FNV-1a).
fn wait_resource(function: &str) -> u64 {
    function.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// Spawns the platform service.
pub fn spawn_platform(sim: &Sim, cfg: FaasConfig, registry: FunctionRegistry) -> FaasHandle {
    let inbox = sim.mailbox("faas");
    let billing = Billing::new();
    let handle = FaasHandle { addr: inbox, billing: billing.clone(), cfg: cfg.clone() };
    sim.spawn_daemon("faas", move |ctx| {
        platform_loop(ctx, inbox, cfg, registry, billing);
    });
    handle
}

struct WarmContainer {
    addr: Addr,
    last_used: SimTime,
}

/// A cached function snapshot (the bytes are notional; the cost model
/// only needs the captured memory size and recency).
struct Snapshot {
    memory_mb: u32,
    last_used: SimTime,
}

/// Mutable state of the platform daemon.
struct Platform {
    inbox: Addr,
    cfg: FaasConfig,
    registry: FunctionRegistry,
    billing: Billing,
    warm: HashMap<String, Vec<WarmContainer>>,
    pending: VecDeque<(String, Job)>,
    running: u32,
    next_container: u64,
    next_fork: u64,
    /// Provisioned-concurrency floor per function ([`SetProvisioned`]).
    provisioned: HashMap<String, u32>,
    /// Pre-warms in flight per function (booting, not yet in the pool) —
    /// keeps repeated [`SetProvisioned`] requests from over-spawning.
    prewarming: HashMap<String, u32>,
    /// Process of each container, so retirement can actually reclaim it.
    pids: HashMap<Addr, Pid>,
    /// Snapshot cache, bounded by
    /// [`crate::SnapshotConfig::snapshot_cache_capacity`]; LRU by virtual
    /// time (name as the deterministic tie-break). `BTreeMap` so victim
    /// selection never depends on hash order.
    snapshots: BTreeMap<String, Snapshot>,
}

fn platform_loop(
    ctx: &mut Ctx,
    inbox: Addr,
    cfg: FaasConfig,
    registry: FunctionRegistry,
    billing: Billing,
) {
    let mut p = Platform {
        inbox,
        cfg,
        registry,
        billing,
        warm: HashMap::new(),
        pending: VecDeque::new(),
        running: 0,
        next_container: 0,
        next_fork: 0,
        provisioned: HashMap::new(),
        prewarming: HashMap::new(),
        pids: HashMap::new(),
        snapshots: BTreeMap::new(),
    };
    loop {
        let msg = ctx.recv(inbox);
        let msg = match msg.try_take::<ContainerFree>() {
            Ok(free) => {
                p.running = p.running.saturating_sub(1);
                p.warm
                    .entry(free.function)
                    .or_default()
                    .push(WarmContainer { addr: free.container, last_used: ctx.now() });
                p.push_pool_size(ctx);
                // Admit one queued invocation, if any.
                if let Some((function, job)) = p.pending.pop_front() {
                    p.dispatch(ctx, function, job);
                }
                continue;
            }
            Err(m) => m,
        };
        let msg = match msg.try_take::<WarmReady>() {
            Ok(ready) => {
                // A pre-warm finished booting: into the pool, no running
                // slot to release (it never held one).
                if let Some(n) = p.prewarming.get_mut(&ready.function) {
                    *n = n.saturating_sub(1);
                }
                p.warm
                    .entry(ready.function)
                    .or_default()
                    .push(WarmContainer { addr: ready.container, last_used: ctx.now() });
                p.push_pool_size(ctx);
                continue;
            }
            Err(m) => m,
        };
        let msg = match msg.try_take::<SnapshotTaken>() {
            Ok(snap) => {
                p.insert_snapshot(ctx, &snap.function, snap.memory_mb);
                continue;
            }
            Err(m) => m,
        };
        let msg = match msg.try_take::<SetProvisioned>() {
            Ok(SetProvisioned { function, n }) => {
                if p.registry.get(&function).is_some() {
                    p.provisioned.insert(function.clone(), n);
                    p.prewarm_shortfall(ctx, &function);
                }
                continue;
            }
            Err(m) => m,
        };
        let req = msg.take::<Request>();
        if req.body.is::<InvokeForked>() {
            let (reply_to, fork) = req.take::<InvokeForked>();
            p.handle_fork(ctx, reply_to, fork);
            continue;
        }
        let (reply_to, invoke) = req.take::<InvokeFn>();
        if p.registry.get(&invoke.function).is_none() {
            let lat = p.cfg.response.sample(ctx.rng());
            ctx.reply::<InvokeResult>(
                reply_to,
                Err(FaasError::UnknownFunction(invoke.function)),
                lat,
            );
            continue;
        }
        let job = Job {
            payload: invoke.payload,
            reply_to,
            start: StartKind::Warm,
            restore_cost: Duration::ZERO,
            span: invoke.span,
        };
        if p.running >= p.cfg.concurrency_limit {
            // The account limit throttles the invocation into the queue;
            // the counter is what the control plane watches for pressure.
            ctx.metric_incr("faas.throttled");
            p.pending.push_back((invoke.function, job));
            continue;
        }
        p.dispatch(ctx, invoke.function, job);
    }
}

impl Platform {
    /// Routes one job to a warm container, or provisions a cold one
    /// (classically, or from a cached snapshot under the snapshot tier).
    fn dispatch(&mut self, ctx: &mut Ctx, function: String, mut job: Job) {
        self.running += 1;
        self.reap_expired(ctx, &function);
        let pool = self.warm.entry(function.clone()).or_default();
        let target = if let Some(c) = pool.pop() {
            c.addr
        } else {
            let (kind, cost) = self.plan_cold_start(ctx, &function);
            job.start = kind;
            job.restore_cost = cost;
            self.spawn_container(ctx, &function, None)
        };
        self.push_pool_size(ctx);
        // Intra-service handoff; the client already paid the dispatch latency.
        ctx.send(target, Msg::new(job), Duration::ZERO);
    }

    /// Decides how the next container of `function` starts when the pool
    /// is empty: classic under [`ColdStartPolicy::Classic`]; under the
    /// snapshot policies, a restore when the cache holds the function's
    /// snapshot (`faas.snapshot_cache.hit`) and a classic fallback that
    /// will repopulate it otherwise (`faas.snapshot_cache.miss`).
    fn plan_cold_start(&mut self, ctx: &mut Ctx, function: &str) -> (StartKind, Duration) {
        let policy =
            self.cfg.effective_policy(self.registry.get(function).and_then(|s| s.cold_start));
        if !policy.uses_snapshots() {
            return (StartKind::Classic, Duration::ZERO);
        }
        let scfg = self.cfg.snapshot.clone().expect("snapshot policy implies a model");
        if let Some(s) = self.snapshots.get_mut(function) {
            s.last_used = ctx.now();
            ctx.metric_incr("faas.snapshot_cache.hit");
            let cost = scfg.restore_base.sample(ctx.rng()) + scfg.page_restore_cost(s.memory_mb);
            (StartKind::Restore, cost)
        } else {
            ctx.metric_incr("faas.snapshot_cache.miss");
            (StartKind::Classic, Duration::ZERO)
        }
    }

    /// Caches a freshly captured snapshot, evicting the least recently
    /// used one (virtual-time LRU, name as the deterministic tie-break)
    /// when the cache is full. Storage is billed from capture to
    /// eviction ([`crate::SnapshotRecord`]).
    fn insert_snapshot(&mut self, ctx: &mut Ctx, function: &str, memory_mb: u32) {
        let Some(scfg) = self.cfg.snapshot.as_ref() else { return };
        if let Some(s) = self.snapshots.get_mut(function) {
            // Already cached (another container of the same function
            // also booted classically); just refresh recency.
            s.last_used = ctx.now();
            return;
        }
        if self.snapshots.len() >= scfg.snapshot_cache_capacity {
            let victim = self
                .snapshots
                .iter()
                .min_by(|a, b| (a.1.last_used, a.0).cmp(&(b.1.last_used, b.0)))
                .map(|(name, _)| name.clone());
            if let Some(name) = victim {
                self.snapshots.remove(&name);
                ctx.metric_incr("faas.snapshot_cache.evict");
                self.billing.mark_snapshot_evicted(&name, ctx.now());
            }
        }
        self.snapshots.insert(function.to_string(), Snapshot { memory_mb, last_used: ctx.now() });
        self.billing.record_snapshot_created(function, memory_mb, ctx.now());
    }

    /// Fans one [`InvokeForked`] request out into per-payload CoW branch
    /// processes. If no warm parent container exists, one is provisioned
    /// first (restore or classic, planned here so the branches know how
    /// long to wait) and joins the pool. Branches run outside the
    /// account concurrency limit — a fork is a burst primitive sharing
    /// one container's resources, not N new containers.
    fn handle_fork(&mut self, ctx: &mut Ctx, reply_to: Addr, fork: InvokeForked) {
        let n = fork.payloads.len();
        let Some(spec) = self.registry.get(&fork.function) else {
            let lat = self.cfg.response.sample(ctx.rng());
            let res: Vec<InvokeResult> =
                (0..n).map(|_| Err(FaasError::UnknownFunction(fork.function.clone()))).collect();
            ctx.reply(reply_to, res, lat);
            return;
        };
        let policy = self.cfg.effective_policy(spec.cold_start);
        if policy != ColdStartPolicy::Fork {
            let lat = self.cfg.response.sample(ctx.rng());
            let res: Vec<InvokeResult> =
                (0..n).map(|_| Err(FaasError::ForkUnsupported(fork.function.clone()))).collect();
            ctx.reply(reply_to, res, lat);
            return;
        }
        if n == 0 {
            let lat = self.cfg.response.sample(ctx.rng());
            ctx.reply::<Vec<InvokeResult>>(reply_to, Vec::new(), lat);
            return;
        }
        let scfg = self.cfg.snapshot.clone().expect("Fork policy implies a snapshot model");
        self.reap_expired(ctx, &fork.function);
        // The CoW parent: a warm container if one exists (forking leaves
        // it reusable, so it stays pooled), else provision one now —
        // restore on a snapshot hit, classic on a miss — and make the
        // branches wait out its boot.
        let parent_delay = match self.warm.get_mut(&fork.function).and_then(|pool| pool.last_mut())
        {
            Some(c) => {
                c.last_used = ctx.now();
                Duration::ZERO
            }
            None => {
                let (kind, planned) = self.plan_cold_start(ctx, &fork.function);
                let cost = match kind {
                    StartKind::Restore => planned,
                    _ => self.cfg.cold_start.sample(ctx.rng()),
                };
                let plan = BootPlan::Planned { kind, cost };
                self.spawn_container(ctx, &fork.function, Some(plan));
                cost
            }
        };
        self.push_pool_size(ctx);
        let collector = ctx.mailbox(&format!("fork-{}-{}", fork.function, self.next_fork));
        self.next_fork += 1;
        for (index, payload) in fork.payloads.into_iter().enumerate() {
            let id = self.next_container;
            self.next_container += 1;
            let host = id / u64::from(self.cfg.containers_per_host.max(1));
            // Branch latencies are planned by the platform (its RNG), so
            // branch processes stay schedule-independent.
            let delay = parent_delay + scfg.fork.sample(ctx.rng());
            let spec2 = spec.clone();
            let cfg2 = self.cfg.clone();
            let billing2 = self.billing.clone();
            let fname = fork.function.clone();
            let span = fork.span;
            ctx.spawn(&format!("fork-{fname}-{id}"), move |bc| {
                branch_run(
                    bc, collector, index, fname, spec2, cfg2, billing2, payload, delay, span, host,
                );
            });
        }
        let response = self.cfg.response;
        ctx.spawn(&format!("fork-collect-{}", self.next_fork - 1), move |cc| {
            let mut results: Vec<InvokeResult> =
                (0..n).map(|_| Err(FaasError::Failed("fork branch lost".into()))).collect();
            for _ in 0..n {
                let done = cc.recv(collector).take::<BranchDone>();
                results[done.index] = done.result;
            }
            let lat = response.sample(cc.rng());
            cc.reply(reply_to, results, lat);
        });
    }

    /// Spawns a fresh container process for `function`. With a `prewarm`
    /// boot plan it boots immediately and reports [`WarmReady`];
    /// otherwise it boots on its first job (the invoker pays the start).
    fn spawn_container(
        &mut self,
        ctx: &mut Ctx,
        function: &str,
        prewarm: Option<BootPlan>,
    ) -> Addr {
        let id = self.next_container;
        self.next_container += 1;
        // Deterministic bin-packing: no RNG draw, so placement never
        // perturbs golden schedules.
        let host = id / u64::from(self.cfg.containers_per_host.max(1));
        let mailbox = ctx.mailbox(&format!("ctr-{function}-{id}"));
        let platform_inbox = self.inbox;
        let cfg2 = self.cfg.clone();
        let registry2 = self.registry.clone();
        let billing2 = self.billing.clone();
        let fname = function.to_string();
        let pid = ctx.spawn_daemon(&format!("ctr-{function}-{id}"), move |cc| {
            container_loop(
                cc,
                mailbox,
                platform_inbox,
                fname,
                cfg2,
                registry2,
                billing2,
                prewarm,
                host,
            );
        });
        self.pids.insert(mailbox, pid);
        mailbox
    }

    /// Boots warm containers until pool + in-flight pre-warms reach the
    /// provisioned floor for `function`.
    fn prewarm_shortfall(&mut self, ctx: &mut Ctx, function: &str) {
        let floor = self.provisioned.get(function).copied().unwrap_or(0) as usize;
        let have = self.warm.get(function).map_or(0, Vec::len)
            + self.prewarming.get(function).copied().unwrap_or(0) as usize;
        for _ in have..floor {
            *self.prewarming.entry(function.to_string()).or_insert(0) += 1;
            self.spawn_container(ctx, function, Some(BootPlan::ClassicSampled));
        }
    }

    /// Retires idle-expired containers of `function`, keeping at least the
    /// provisioned floor warm. Retirements are traced (`faas.retire`) and
    /// billed ([`RetirementRecord`]) — a reclaimed container is a real
    /// platform event, not a silent `Vec::retain`. The function's cached
    /// snapshot (if any) survives its containers — that is the tier's
    /// point.
    fn reap_expired(&mut self, ctx: &mut Ctx, function: &str) {
        let Some(pool) = self.warm.get_mut(function) else { return };
        let now = ctx.now();
        let timeout = self.cfg.container_idle_timeout;
        let floor = self.provisioned.get(function).copied().unwrap_or(0) as usize;
        let expired =
            pool.iter().filter(|c| now.saturating_duration_since(c.last_used) > timeout).count();
        let retire_n = expired.min(pool.len().saturating_sub(floor));
        if retire_n == 0 {
            return;
        }
        // Retire the longest-idle containers first; the floor keeps the
        // freshest ones even past their timeout.
        pool.sort_by_key(|c| c.last_used);
        let memory_mb = self.registry.get(function).map_or(0, |s| s.memory_mb);
        for c in pool.drain(..retire_n) {
            let idle = now.saturating_duration_since(c.last_used);
            ctx.metric_incr("faas.retirements");
            let mark = ctx.span_instant("faas.retire", "faas");
            ctx.span_annotate(mark, "function", function);
            self.billing.record_retirement(RetirementRecord {
                function: function.to_string(),
                memory_mb,
                idle,
            });
            if let Some(pid) = self.pids.remove(&c.addr) {
                ctx.kill(pid);
            }
        }
    }

    /// Publishes the total warm-pool size (all functions) as the
    /// `faas.pool_size` series.
    fn push_pool_size(&self, ctx: &mut Ctx) {
        let total: usize = self.warm.values().map(Vec::len).sum();
        ctx.metric_push("faas.pool_size", total as f64);
    }
}

/// One container: runs jobs for a single function, sequentially, reporting
/// back to the platform between jobs. With a `prewarm` boot plan it boots
/// up front (off anyone's request path) and announces [`WarmReady`].
#[allow(clippy::too_many_arguments)]
fn container_loop(
    ctx: &mut Ctx,
    inbox: Addr,
    platform: Addr,
    function: String,
    cfg: FaasConfig,
    registry: FunctionRegistry,
    billing: Billing,
    prewarm: Option<BootPlan>,
    host: u64,
) {
    let mut first = true;
    if let Some(plan) = prewarm {
        let (kind, boot) = match plan {
            BootPlan::ClassicSampled => (StartKind::Classic, cfg.cold_start.sample(ctx.rng())),
            BootPlan::Planned { kind, cost } => (kind, cost),
        };
        let boot_span = ctx.span_begin("faas.prewarm", "faas");
        ctx.span_annotate(boot_span, "function", &function);
        if kind == StartKind::Restore {
            ctx.span_annotate(boot_span, "start", "restore");
        }
        ctx.sleep(boot);
        ctx.span_end(boot_span);
        record_start(ctx, kind, boot);
        announce_snapshot(ctx, platform, &function, &cfg, &registry, kind);
        if matches!(plan, BootPlan::ClassicSampled) {
            ctx.metric_incr("faas.prewarms");
        }
        first = false;
        ctx.send(
            platform,
            Msg::new(WarmReady { function: function.clone(), container: inbox }),
            Duration::ZERO,
        );
    }
    loop {
        let job = ctx.recv(inbox).take::<Job>();
        // Adopt the invoker's trace context for the whole job.
        ctx.set_trace_ctx(TraceCtx::under(job.span));
        if job.start == StartKind::Restore {
            let boot_span = ctx.span_begin("faas.restore", "faas");
            ctx.span_annotate(boot_span, "function", &function);
            ctx.sleep(job.restore_cost);
            ctx.span_end(boot_span);
            record_start(ctx, StartKind::Restore, job.restore_cost);
            first = false;
        } else if job.start == StartKind::Classic || first {
            let boot = cfg.cold_start.sample(ctx.rng());
            let boot_span = ctx.span_begin("faas.coldstart", "faas");
            ctx.sleep(boot);
            ctx.span_end(boot_span);
            record_start(ctx, StartKind::Classic, boot);
            announce_snapshot(ctx, platform, &function, &cfg, &registry, StartKind::Classic);
            first = false;
        }
        ctx.metric_incr("faas.invocations");
        if job.start == StartKind::Classic {
            ctx.metric_incr("faas.cold_starts");
        }
        let spec = registry.get(&function).expect("function deployed");
        let exec_span = ctx.span_begin("faas.exec", "faas");
        ctx.span_annotate(exec_span, "function", &function);
        let t0 = ctx.now();
        // Failure injection: crash after a random fraction of a second.
        let injected_failure = cfg.failure_rate > 0.0 && {
            let p: f64 = ctx.rng().random_range(0.0..1.0);
            p < cfg.failure_rate
        };
        // Work the handler causes (e.g. DSO calls) nests under the exec span.
        ctx.set_trace_ctx(TraceCtx::under(exec_span));
        let result: Result<Vec<u8>, String> = if injected_failure {
            let partial: f64 = ctx.rng().random_range(0.0..1.0);
            ctx.sleep(Duration::from_secs_f64(partial));
            Err("container crashed (injected)".to_string())
        } else {
            let mut env = FnCtx::with_host(ctx, spec.memory_mb, host);
            spec.handler.invoke(&mut env, job.payload)
        };
        let elapsed = ctx.now().saturating_duration_since(t0);
        ctx.span_end(exec_span);
        let timed_out = elapsed > cfg.max_duration;
        billing.record(InvocationRecord {
            function: function.clone(),
            duration: elapsed.min(cfg.max_duration),
            memory_mb: spec.memory_mb,
            cold_start: job.start == StartKind::Classic,
            kind: job.start,
            failed: result.is_err() || timed_out,
        });
        let reply: InvokeResult =
            if timed_out { Err(FaasError::TimedOut) } else { result.map_err(FaasError::Failed) };
        let lat = cfg.response.sample(ctx.rng());
        ctx.reply(job.reply_to, reply, lat);
        ctx.send(
            platform,
            Msg::new(ContainerFree { function: function.clone(), container: inbox }),
            Duration::ZERO,
        );
    }
}

/// Counts a container start in the `faas.start.{classic,restore,fork}`
/// counter and latency histogram of its kind. Host-side only — never a
/// simulation event, so classic schedules are untouched.
fn record_start(ctx: &mut Ctx, kind: StartKind, latency: Duration) {
    let name = match kind {
        StartKind::Classic => "faas.start.classic",
        StartKind::Restore => "faas.start.restore",
        StartKind::Fork => "faas.start.fork",
        StartKind::Warm => return,
    };
    ctx.metric_incr(name);
    ctx.metric_record(name, latency);
}

/// After a classic boot of a snapshot-tier function, report the captured
/// snapshot to the platform so later cold starts restore instead.
fn announce_snapshot(
    ctx: &mut Ctx,
    platform: Addr,
    function: &str,
    cfg: &FaasConfig,
    registry: &FunctionRegistry,
    kind: StartKind,
) {
    if kind != StartKind::Classic {
        return;
    }
    let Some(spec) = registry.get(function) else { return };
    if cfg.effective_policy(spec.cold_start).uses_snapshots() {
        ctx.send(
            platform,
            Msg::new(SnapshotTaken { function: function.to_string(), memory_mb: spec.memory_mb }),
            Duration::ZERO,
        );
    }
}

/// One forked CoW branch: waits for the parent (if it is still booting)
/// plus its own fork latency, runs the handler once, reports to the
/// fork's collector. Branches are one-shot processes, not pooled
/// containers — the pooled parent is what serves later plain invokes.
#[allow(clippy::too_many_arguments)]
fn branch_run(
    ctx: &mut Ctx,
    collector: Addr,
    index: usize,
    function: String,
    spec: FunctionSpec,
    cfg: FaasConfig,
    billing: Billing,
    payload: Vec<u8>,
    delay: Duration,
    span: SpanId,
    host: u64,
) {
    ctx.set_trace_ctx(TraceCtx::under(span));
    let fork_span = ctx.span_begin("faas.fork", "faas");
    ctx.span_annotate(fork_span, "function", &function);
    ctx.span_annotate(fork_span, "branch", index.to_string());
    ctx.sleep(delay);
    ctx.span_end(fork_span);
    record_start(ctx, StartKind::Fork, delay);
    ctx.metric_incr("faas.invocations");
    let exec_span = ctx.span_begin("faas.exec", "faas");
    ctx.span_annotate(exec_span, "function", &function);
    let t0 = ctx.now();
    let injected_failure = cfg.failure_rate > 0.0 && {
        let p: f64 = ctx.rng().random_range(0.0..1.0);
        p < cfg.failure_rate
    };
    ctx.set_trace_ctx(TraceCtx::under(exec_span));
    let result: Result<Vec<u8>, String> = if injected_failure {
        let partial: f64 = ctx.rng().random_range(0.0..1.0);
        ctx.sleep(Duration::from_secs_f64(partial));
        Err("container crashed (injected)".to_string())
    } else {
        let mut env = FnCtx::with_host(ctx, spec.memory_mb, host);
        spec.handler.invoke(&mut env, payload)
    };
    let elapsed = ctx.now().saturating_duration_since(t0);
    ctx.span_end(exec_span);
    let timed_out = elapsed > cfg.max_duration;
    billing.record(InvocationRecord {
        function: function.clone(),
        duration: elapsed.min(cfg.max_duration),
        memory_mb: spec.memory_mb,
        cold_start: false,
        kind: StartKind::Fork,
        failed: result.is_err() || timed_out,
    });
    let reply: InvokeResult =
        if timed_out { Err(FaasError::TimedOut) } else { result.map_err(FaasError::Failed) };
    ctx.send(collector, Msg::new(BranchDone { index, result: reply }), Duration::ZERO);
}
