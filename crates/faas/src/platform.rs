//! The invocation service: synchronous (`RequestResponse`) calls, a warm
//! container pool per function, cold starts, a account-wide concurrency
//! limit, failure injection, and billing.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use rand::RngExt;
use simcore::{Addr, Ctx, LatencyModel, Msg, Pid, Request, Sim, SimTime, SpanId, TraceCtx};

use crate::billing::{Billing, InvocationRecord, Pricing, RetirementRecord};
use crate::function::{FnCtx, FunctionRegistry};

/// Platform configuration, calibrated to AWS Lambda in 2019.
#[derive(Clone, Debug)]
pub struct FaasConfig {
    /// One-way latency of the invoke control path when a warm container is
    /// available (the "Invocation" segment of Fig. 7b).
    pub warm_dispatch: LatencyModel,
    /// Container provisioning delay (§6.3.3: "cold starts … add 1 to 2
    /// seconds of invocation delay").
    pub cold_start: LatencyModel,
    /// One-way latency of the response path.
    pub response: LatencyModel,
    /// Idle time after which a warm container is reclaimed.
    pub container_idle_timeout: Duration,
    /// Account-wide concurrent-execution limit.
    pub concurrency_limit: u32,
    /// Hard cap on function duration (15 min on Lambda).
    pub max_duration: Duration,
    /// Probability that an invocation crashes mid-run (failure injection).
    pub failure_rate: f64,
    /// How many containers share one physical host. Container `id` runs
    /// on host `id / containers_per_host` — a deterministic bin-packing
    /// stand-in for the provider's placement. Deployment layers use the
    /// host id ([`FnCtx::host`]) to share per-host resources (e.g. the
    /// DSO node cache) between co-located containers.
    pub containers_per_host: u32,
    /// Billing prices.
    pub pricing: Pricing,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            warm_dispatch: LatencyModel::uniform(Duration::from_millis(13), 0.3),
            cold_start: LatencyModel::uniform(Duration::from_millis(1500), 0.33),
            response: LatencyModel::uniform(Duration::from_millis(8), 0.3),
            container_idle_timeout: Duration::from_secs(600),
            concurrency_limit: 3000,
            max_duration: Duration::from_secs(900),
            failure_rate: 0.0,
            containers_per_host: 8,
            pricing: Pricing::default(),
        }
    }
}

/// Client request: invoke `function` with `payload` synchronously.
#[derive(Debug)]
pub struct InvokeFn {
    /// Deployed function name.
    pub function: String,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
    /// Caller's trace span; the container parents its execution spans under
    /// it ([`SpanId::NONE`] when untraced).
    pub span: SpanId,
}

/// Invocation outcome delivered to the caller.
pub type InvokeResult = Result<Vec<u8>, FaasError>;

/// Errors surfaced to invokers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaasError {
    /// No such function is deployed.
    UnknownFunction(String),
    /// The handler failed (or failure injection fired).
    Failed(String),
    /// The invocation exceeded the platform's duration cap.
    TimedOut,
    /// The account's concurrency limit rejected the invocation.
    Throttled,
}

impl std::fmt::Display for FaasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaasError::UnknownFunction(n) => write!(f, "unknown function: {n}"),
            FaasError::Failed(e) => write!(f, "function failed: {e}"),
            FaasError::TimedOut => write!(f, "function timed out"),
            FaasError::Throttled => write!(f, "throttled by concurrency limit"),
        }
    }
}

impl std::error::Error for FaasError {}

// Platform-internal messages.
#[derive(Debug)]
struct Job {
    payload: Vec<u8>,
    reply_to: Addr,
    cold: bool,
    span: SpanId,
}

#[derive(Debug)]
struct ContainerFree {
    function: String,
    container: Addr,
}

/// A pre-warmed container finished booting and enters the warm pool.
/// Unlike [`ContainerFree`] it does *not* release a running slot — the
/// container never held one.
#[derive(Debug)]
struct WarmReady {
    function: String,
    container: Addr,
}

/// Control-plane request: keep (at least) `n` warm containers provisioned
/// for `function`. The platform boots the shortfall immediately (off the
/// request path, so nobody waits on these cold starts) and exempts the
/// floor from idle reclamation. Lowering `n` lets the surplus age out
/// through the normal idle timeout.
#[derive(Debug)]
pub struct SetProvisioned {
    /// Deployed function name.
    pub function: String,
    /// Number of warm containers to keep provisioned.
    pub n: u32,
}

/// Handle to a running platform.
#[derive(Clone, Debug)]
pub struct FaasHandle {
    addr: Addr,
    billing: Billing,
    cfg: FaasConfig,
}

impl FaasHandle {
    /// Synchronously invokes a function (AWS `RequestResponse` mode); blocks
    /// until the function returns. Retries are the *caller's* decision,
    /// exactly as the paper argues (§4.4).
    pub fn invoke(&self, ctx: &mut Ctx, function: &str, payload: Vec<u8>) -> InvokeResult {
        let lat = self.cfg.warm_dispatch.sample(ctx.rng());
        // A synchronous invoke can park indefinitely (the function may
        // itself block on shared objects); tell the deadlock detector
        // which function this caller is waiting on.
        let resource = function.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        ctx.annotate_wait(
            resource,
            simcore::WaitKind::Call,
            function,
            format!("FaasHandle::invoke {function}"),
        );
        let span = ctx.span_begin("faas.invoke", "faas");
        ctx.span_annotate(span, "function", function);
        let result: InvokeResult =
            ctx.call(self.addr, InvokeFn { function: function.to_string(), payload, span }, lat);
        if let Err(e) = &result {
            ctx.span_annotate(span, "error", e.to_string());
        }
        ctx.span_end(span);
        result
    }

    /// Sets the provisioned-concurrency floor for `function`: the platform
    /// keeps at least `n` warm containers, booting the shortfall now (off
    /// the request path) and exempting the floor from idle reclamation.
    /// Fire-and-forget — the pre-warms complete asynchronously; watch the
    /// `faas.pool_size` series for the effect.
    pub fn set_provisioned(&self, ctx: &mut Ctx, function: &str, n: u32) {
        let lat = self.cfg.warm_dispatch.sample(ctx.rng());
        ctx.send(self.addr, Msg::new(SetProvisioned { function: function.to_string(), n }), lat);
    }

    /// The shared billing ledger.
    pub fn billing(&self) -> &Billing {
        &self.billing
    }

    /// The platform configuration.
    pub fn config(&self) -> &FaasConfig {
        &self.cfg
    }
}

/// Spawns the platform service.
pub fn spawn_platform(sim: &Sim, cfg: FaasConfig, registry: FunctionRegistry) -> FaasHandle {
    let inbox = sim.mailbox("faas");
    let billing = Billing::new();
    let handle = FaasHandle { addr: inbox, billing: billing.clone(), cfg: cfg.clone() };
    sim.spawn_daemon("faas", move |ctx| {
        platform_loop(ctx, inbox, cfg, registry, billing);
    });
    handle
}

struct WarmContainer {
    addr: Addr,
    last_used: SimTime,
}

/// Mutable state of the platform daemon.
struct Platform {
    inbox: Addr,
    cfg: FaasConfig,
    registry: FunctionRegistry,
    billing: Billing,
    warm: HashMap<String, Vec<WarmContainer>>,
    pending: VecDeque<(String, Job)>,
    running: u32,
    next_container: u64,
    /// Provisioned-concurrency floor per function ([`SetProvisioned`]).
    provisioned: HashMap<String, u32>,
    /// Pre-warms in flight per function (booting, not yet in the pool) —
    /// keeps repeated [`SetProvisioned`] requests from over-spawning.
    prewarming: HashMap<String, u32>,
    /// Process of each container, so retirement can actually reclaim it.
    pids: HashMap<Addr, Pid>,
}

fn platform_loop(
    ctx: &mut Ctx,
    inbox: Addr,
    cfg: FaasConfig,
    registry: FunctionRegistry,
    billing: Billing,
) {
    let mut p = Platform {
        inbox,
        cfg,
        registry,
        billing,
        warm: HashMap::new(),
        pending: VecDeque::new(),
        running: 0,
        next_container: 0,
        provisioned: HashMap::new(),
        prewarming: HashMap::new(),
        pids: HashMap::new(),
    };
    loop {
        let msg = ctx.recv(inbox);
        let msg = match msg.try_take::<ContainerFree>() {
            Ok(free) => {
                p.running = p.running.saturating_sub(1);
                p.warm
                    .entry(free.function)
                    .or_default()
                    .push(WarmContainer { addr: free.container, last_used: ctx.now() });
                p.push_pool_size(ctx);
                // Admit one queued invocation, if any.
                if let Some((function, job)) = p.pending.pop_front() {
                    p.dispatch(ctx, function, job);
                }
                continue;
            }
            Err(m) => m,
        };
        let msg = match msg.try_take::<WarmReady>() {
            Ok(ready) => {
                // A pre-warm finished booting: into the pool, no running
                // slot to release (it never held one).
                if let Some(n) = p.prewarming.get_mut(&ready.function) {
                    *n = n.saturating_sub(1);
                }
                p.warm
                    .entry(ready.function)
                    .or_default()
                    .push(WarmContainer { addr: ready.container, last_used: ctx.now() });
                p.push_pool_size(ctx);
                continue;
            }
            Err(m) => m,
        };
        let msg = match msg.try_take::<SetProvisioned>() {
            Ok(SetProvisioned { function, n }) => {
                if p.registry.get(&function).is_some() {
                    p.provisioned.insert(function.clone(), n);
                    p.prewarm_shortfall(ctx, &function);
                }
                continue;
            }
            Err(m) => m,
        };
        let (reply_to, invoke) = msg.take::<Request>().take::<InvokeFn>();
        if p.registry.get(&invoke.function).is_none() {
            let lat = p.cfg.response.sample(ctx.rng());
            ctx.reply::<InvokeResult>(
                reply_to,
                Err(FaasError::UnknownFunction(invoke.function)),
                lat,
            );
            continue;
        }
        let job = Job { payload: invoke.payload, reply_to, cold: false, span: invoke.span };
        if p.running >= p.cfg.concurrency_limit {
            // The account limit throttles the invocation into the queue;
            // the counter is what the control plane watches for pressure.
            ctx.metric_incr("faas.throttled");
            p.pending.push_back((invoke.function, job));
            continue;
        }
        p.dispatch(ctx, invoke.function, job);
    }
}

impl Platform {
    /// Routes one job to a warm container, or provisions a cold one.
    fn dispatch(&mut self, ctx: &mut Ctx, function: String, mut job: Job) {
        self.running += 1;
        self.reap_expired(ctx, &function);
        let pool = self.warm.entry(function.clone()).or_default();
        let target = if let Some(c) = pool.pop() {
            c.addr
        } else {
            job.cold = true;
            self.spawn_container(ctx, &function, false)
        };
        self.push_pool_size(ctx);
        // Intra-service handoff; the client already paid the dispatch latency.
        ctx.send(target, Msg::new(job), Duration::ZERO);
    }

    /// Spawns a fresh container process for `function`. With `prewarm` it
    /// boots immediately and reports [`WarmReady`]; otherwise it boots on
    /// its first job (the invoker pays the cold start).
    fn spawn_container(&mut self, ctx: &mut Ctx, function: &str, prewarm: bool) -> Addr {
        let id = self.next_container;
        self.next_container += 1;
        // Deterministic bin-packing: no RNG draw, so placement never
        // perturbs golden schedules.
        let host = id / u64::from(self.cfg.containers_per_host.max(1));
        let mailbox = ctx.mailbox(&format!("ctr-{function}-{id}"));
        let platform_inbox = self.inbox;
        let cfg2 = self.cfg.clone();
        let registry2 = self.registry.clone();
        let billing2 = self.billing.clone();
        let fname = function.to_string();
        let pid = ctx.spawn_daemon(&format!("ctr-{function}-{id}"), move |cc| {
            container_loop(
                cc,
                mailbox,
                platform_inbox,
                fname,
                cfg2,
                registry2,
                billing2,
                prewarm,
                host,
            );
        });
        self.pids.insert(mailbox, pid);
        mailbox
    }

    /// Boots warm containers until pool + in-flight pre-warms reach the
    /// provisioned floor for `function`.
    fn prewarm_shortfall(&mut self, ctx: &mut Ctx, function: &str) {
        let floor = self.provisioned.get(function).copied().unwrap_or(0) as usize;
        let have = self.warm.get(function).map_or(0, Vec::len)
            + self.prewarming.get(function).copied().unwrap_or(0) as usize;
        for _ in have..floor {
            *self.prewarming.entry(function.to_string()).or_insert(0) += 1;
            self.spawn_container(ctx, function, true);
        }
    }

    /// Retires idle-expired containers of `function`, keeping at least the
    /// provisioned floor warm. Retirements are traced (`faas.retire`) and
    /// billed ([`RetirementRecord`]) — a reclaimed container is a real
    /// platform event, not a silent `Vec::retain`.
    fn reap_expired(&mut self, ctx: &mut Ctx, function: &str) {
        let Some(pool) = self.warm.get_mut(function) else { return };
        let now = ctx.now();
        let timeout = self.cfg.container_idle_timeout;
        let floor = self.provisioned.get(function).copied().unwrap_or(0) as usize;
        let expired =
            pool.iter().filter(|c| now.saturating_duration_since(c.last_used) > timeout).count();
        let retire_n = expired.min(pool.len().saturating_sub(floor));
        if retire_n == 0 {
            return;
        }
        // Retire the longest-idle containers first; the floor keeps the
        // freshest ones even past their timeout.
        pool.sort_by_key(|c| c.last_used);
        let memory_mb = self.registry.get(function).map_or(0, |s| s.memory_mb);
        for c in pool.drain(..retire_n) {
            let idle = now.saturating_duration_since(c.last_used);
            ctx.metric_incr("faas.retirements");
            let mark = ctx.span_instant("faas.retire", "faas");
            ctx.span_annotate(mark, "function", function);
            self.billing.record_retirement(RetirementRecord {
                function: function.to_string(),
                memory_mb,
                idle,
            });
            if let Some(pid) = self.pids.remove(&c.addr) {
                ctx.kill(pid);
            }
        }
    }

    /// Publishes the total warm-pool size (all functions) as the
    /// `faas.pool_size` series.
    fn push_pool_size(&self, ctx: &mut Ctx) {
        let total: usize = self.warm.values().map(Vec::len).sum();
        ctx.metric_push("faas.pool_size", total as f64);
    }
}

/// One container: runs jobs for a single function, sequentially, reporting
/// back to the platform between jobs. With `prewarm` it boots up front
/// (off anyone's request path) and announces [`WarmReady`].
#[allow(clippy::too_many_arguments)]
fn container_loop(
    ctx: &mut Ctx,
    inbox: Addr,
    platform: Addr,
    function: String,
    cfg: FaasConfig,
    registry: FunctionRegistry,
    billing: Billing,
    prewarm: bool,
    host: u64,
) {
    let mut first = true;
    if prewarm {
        let boot = cfg.cold_start.sample(ctx.rng());
        let boot_span = ctx.span_begin("faas.prewarm", "faas");
        ctx.span_annotate(boot_span, "function", &function);
        ctx.sleep(boot);
        ctx.span_end(boot_span);
        ctx.metric_incr("faas.prewarms");
        first = false;
        ctx.send(
            platform,
            Msg::new(WarmReady { function: function.clone(), container: inbox }),
            Duration::ZERO,
        );
    }
    loop {
        let job = ctx.recv(inbox).take::<Job>();
        // Adopt the invoker's trace context for the whole job.
        ctx.set_trace_ctx(TraceCtx::under(job.span));
        if job.cold || first {
            let boot = cfg.cold_start.sample(ctx.rng());
            let boot_span = ctx.span_begin("faas.coldstart", "faas");
            ctx.sleep(boot);
            ctx.span_end(boot_span);
            first = false;
        }
        ctx.metric_incr("faas.invocations");
        if job.cold {
            ctx.metric_incr("faas.cold_starts");
        }
        let spec = registry.get(&function).expect("function deployed");
        let exec_span = ctx.span_begin("faas.exec", "faas");
        ctx.span_annotate(exec_span, "function", &function);
        let t0 = ctx.now();
        // Failure injection: crash after a random fraction of a second.
        let injected_failure = cfg.failure_rate > 0.0 && {
            let p: f64 = ctx.rng().random_range(0.0..1.0);
            p < cfg.failure_rate
        };
        // Work the handler causes (e.g. DSO calls) nests under the exec span.
        ctx.set_trace_ctx(TraceCtx::under(exec_span));
        let result: Result<Vec<u8>, String> = if injected_failure {
            let partial: f64 = ctx.rng().random_range(0.0..1.0);
            ctx.sleep(Duration::from_secs_f64(partial));
            Err("container crashed (injected)".to_string())
        } else {
            let mut env = FnCtx::with_host(ctx, spec.memory_mb, host);
            spec.handler.invoke(&mut env, job.payload)
        };
        let elapsed = ctx.now().saturating_duration_since(t0);
        ctx.span_end(exec_span);
        let timed_out = elapsed > cfg.max_duration;
        billing.record(InvocationRecord {
            function: function.clone(),
            duration: elapsed.min(cfg.max_duration),
            memory_mb: spec.memory_mb,
            cold_start: job.cold,
            failed: result.is_err() || timed_out,
        });
        let reply: InvokeResult =
            if timed_out { Err(FaasError::TimedOut) } else { result.map_err(FaasError::Failed) };
        let lat = cfg.response.sample(ctx.rng());
        ctx.reply(job.reply_to, reply, lat);
        ctx.send(
            platform,
            Msg::new(ContainerFree { function: function.clone(), container: inbox }),
            Duration::ZERO,
        );
    }
}
