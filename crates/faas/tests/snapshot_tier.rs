//! The snapshot/fork cold-start tier, observed precisely: the
//! `faas.start.*` and `faas.snapshot_cache.*` counters are asserted
//! *exactly* for a deterministic scenario (the style of the DSO two-tier
//! cache counter test), and the whole tier — restores, evictions, forks,
//! injected container crashes — holds its invariants across perturbed
//! schedules under `explore_seeds`.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::explore::{explore_seeds, Check};
use simcore::{MetricsRegistry, Sim};

use faas::{spawn_platform, ColdStartPolicy, FaasConfig, FnCtx, FunctionRegistry, SnapshotConfig};

fn tier_cfg(policy: ColdStartPolicy, capacity: usize, failure_rate: f64) -> FaasConfig {
    FaasConfig::builder()
        .cold_start_policy(policy)
        .snapshot(SnapshotConfig { snapshot_cache_capacity: capacity, ..SnapshotConfig::default() })
        .container_idle_timeout(Duration::from_secs(5))
        .failure_rate(failure_rate)
        .build()
        .expect("valid tier config")
}

/// Every `faas.start.*` and `faas.snapshot_cache.*` counter, exactly:
///
/// 1. `a` cold → cache miss, classic start, snapshot `a` captured.
/// 2. idle past the timeout, `a` again → container reaped, cache hit,
///    restore start.
/// 3. `b` cold → miss, classic; inserting `b`'s snapshot into the
///    capacity-1 cache evicts `a`.
/// 4. `a` again (its container long reaped) → miss, classic; inserting
///    `a` evicts `b`.
/// 5. a 2-way fork of `f` with no warm parent → miss, the parent boots
///    classically off the request path (counted as a classic start),
///    inserting `f` evicts `a`; both branches are fork starts.
#[test]
fn start_and_snapshot_cache_counters_exact() {
    let mut sim = Sim::new(71);
    let metrics = MetricsRegistry::new();
    sim.set_metrics(&metrics);
    let reg = FunctionRegistry::new();
    reg.register("a", 1792, |_env: &mut FnCtx<'_>, p: Vec<u8>| Ok(p));
    reg.register("b", 1792, |_env: &mut FnCtx<'_>, p: Vec<u8>| Ok(p));
    reg.register_with_policy("f", 1792, ColdStartPolicy::Fork, |_env: &mut FnCtx<'_>, p| Ok(p));
    let faas = spawn_platform(&sim, tier_cfg(ColdStartPolicy::SnapshotRestore, 1, 0.0), reg);
    let f2 = faas.clone();
    sim.spawn("client", move |ctx| {
        let _ = f2.invoke(ctx, "a", vec![1]).expect("step 1");
        ctx.sleep(Duration::from_secs(6));
        let _ = f2.invoke(ctx, "a", vec![2]).expect("step 2");
        ctx.sleep(Duration::from_secs(6));
        let _ = f2.invoke(ctx, "b", vec![3]).expect("step 3");
        ctx.sleep(Duration::from_secs(6));
        let _ = f2.invoke(ctx, "a", vec![4]).expect("step 4");
        ctx.sleep(Duration::from_secs(6));
        let results = f2.invoke_forked(ctx, "f", vec![vec![5], vec![6]]);
        assert!(results.iter().all(Result::is_ok), "step 5: {results:?}");
    });
    sim.run_until_idle().expect_quiescent();

    assert_eq!(metrics.counter_value("faas.start.classic"), 4, "steps 1, 3, 4 + fork parent");
    assert_eq!(metrics.counter_value("faas.start.restore"), 1, "step 2");
    assert_eq!(metrics.counter_value("faas.start.fork"), 2, "two branches");
    assert_eq!(metrics.counter_value("faas.snapshot_cache.hit"), 1, "step 2");
    assert_eq!(metrics.counter_value("faas.snapshot_cache.miss"), 4, "steps 1, 3, 4, 5");
    assert_eq!(metrics.counter_value("faas.snapshot_cache.evict"), 3, "steps 3, 4, 5");

    // The same families as latency histograms.
    assert_eq!(metrics.histogram("faas.start.classic").count(), 4);
    assert_eq!(metrics.histogram("faas.start.restore").count(), 1);
    assert_eq!(metrics.histogram("faas.start.fork").count(), 2);
    let restore = metrics.histogram("faas.start.restore").mean();
    assert!(
        restore > Duration::from_millis(150) && restore < Duration::from_millis(250),
        "dirty-page cost model: {restore:?}"
    );
    // Step 5's parent was cold: the branch latency histogram includes
    // the parent's classic boot the branches waited out (warm-parent
    // forks at pure 10–50 ms fork latency are covered in the crate's
    // unit tests).
    let fork = metrics.histogram("faas.start.fork").mean();
    assert!(
        fork > Duration::from_millis(1000) && fork < Duration::from_millis(2100),
        "cold-parent fork = classic boot + fork: {fork:?}"
    );

    // Billing agrees with the counters.
    assert_eq!(faas.billing().restores(), 1);
    assert_eq!(faas.billing().forks(), 2);
    assert_eq!(faas.billing().snapshots_taken(), 4, "a, b, a again, f");
    let end = simcore::SimTime::from_secs(30);
    assert!(faas.billing().snapshot_gb_seconds(end) > 0.0, "storage is billed");
}

/// The tier under schedule exploration with a crash schedule: container
/// crashes are injected (`failure_rate`) while three clients mix plain
/// invokes, an idle-out/restore cycle, and fork fan-outs. Whatever the
/// schedule, every caller gets exactly one reply per payload, and the
/// cache/start accounting stays consistent: every snapshot hit is a
/// restore start, every miss a classic start (no floors configured).
#[test]
fn tier_invariants_hold_across_schedules_and_crashes() {
    let scenario = |sim: &mut Sim| -> Check {
        let metrics = MetricsRegistry::new();
        sim.set_metrics(&metrics);
        let reg = FunctionRegistry::new();
        reg.register_with_policy(
            "work",
            1792,
            ColdStartPolicy::Fork,
            |env: &mut FnCtx<'_>, p: Vec<u8>| {
                env.compute(Duration::from_millis(2));
                Ok(p)
            },
        );
        let faas = spawn_platform(sim, tier_cfg(ColdStartPolicy::SnapshotRestore, 4, 0.3), reg);
        let replies: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        for c in 0..3u8 {
            let f = faas.clone();
            let replies = replies.clone();
            sim.spawn(&format!("client-{c}"), move |ctx| {
                // Plain invokes race each other's cold starts.
                let r1 = f.invoke(ctx, "work", vec![c]);
                let r2 = f.invoke(ctx, "work", vec![c, c]);
                // Idle out the pool, then come back: restores under
                // crashes and reordered schedules.
                ctx.sleep(Duration::from_secs(7));
                let r3 = f.invoke(ctx, "work", vec![c, c, c]);
                let forked = f.invoke_forked(ctx, "work", vec![vec![c], vec![c + 1]]);
                let mut g = replies.lock();
                g.push([r1, r2, r3].iter().filter(|r| r.is_ok()).count());
                g.push(forked.len());
            });
        }
        Box::new(move || {
            let replies = replies.lock();
            if replies.len() != 6 {
                return Err(format!("clients under-reported: {replies:?}"));
            }
            // One reply per fork payload, every time (errors included).
            for (i, &n) in replies.iter().enumerate() {
                if i % 2 == 1 && n != 2 {
                    return Err(format!("fork fan-out lost a branch reply: {replies:?}"));
                }
            }
            let hits = metrics.counter_value("faas.snapshot_cache.hit");
            let misses = metrics.counter_value("faas.snapshot_cache.miss");
            let classic = metrics.counter_value("faas.start.classic");
            let restores = metrics.counter_value("faas.start.restore");
            let forks = metrics.counter_value("faas.start.fork");
            if hits != restores {
                return Err(format!(
                    "every cache hit must restore: {hits} hits, {restores} restores"
                ));
            }
            if misses != classic {
                return Err(format!(
                    "every miss must fall back to classic: {misses} misses, {classic} classic"
                ));
            }
            if forks != 6 {
                return Err(format!("3 clients x 2 branches, got {forks} fork starts"));
            }
            if hits + misses == 0 {
                return Err("scenario never exercised the snapshot cache".into());
            }
            Ok(())
        })
    };
    explore_seeds(600, 25, scenario).expect_clean();
}
