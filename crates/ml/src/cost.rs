//! The compute-cost model that maps paper-scale workloads onto virtual
//! time.
//!
//! The evaluation's dataset is 100 GB / 55.6 M points of 100 dimensions,
//! split over 80 workers (§6.2.2). We run the actual math on a scaled-down
//! sample but charge each worker the CPU time its paper-scale share would
//! take on one vCPU. The constants are fitted from the paper's own
//! numbers (see EXPERIMENTS.md §"calibration"):
//!
//! * k-means iterations cost ≈ `0.088 × k` seconds at 80 workers, which
//!   pins the per point-centroid-coordinate cost;
//! * logistic regression iterations cost ≈ 0.55 s of compute, pinning the
//!   per point-coordinate gradient cost.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Paper-scale dataset shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetScale {
    /// Total elements (55.6 M in the paper).
    pub total_points: u64,
    /// Dimensions per element.
    pub dims: u32,
    /// Partitions / workers (80 in the paper).
    pub partitions: u32,
}

impl Default for DatasetScale {
    fn default() -> Self {
        DatasetScale { total_points: 55_600_000, dims: 100, partitions: 80 }
    }
}

impl DatasetScale {
    /// Points per partition.
    pub fn points_per_partition(&self) -> u64 {
        self.total_points / self.partitions as u64
    }

    /// Serialized bytes of one partition (doubles plus label overhead).
    pub fn partition_bytes(&self) -> u64 {
        self.points_per_partition() * (self.dims as u64 + 1) * 8
    }
}

/// JVM cost of one point×centroid distance accumulation, per coordinate,
/// in nanoseconds.
pub const KMEANS_PER_POINT_CENTROID_DIM_NS: f64 = 1.27;

/// JVM cost of one gradient accumulation, per point coordinate, in
/// nanoseconds.
pub const LOGREG_PER_POINT_DIM_NS: f64 = 8.0;

/// Sustained S3 read bandwidth per Lambda reader (ENI-bound).
pub const S3_READ_BW: f64 = 85.0 * 1024.0 * 1024.0;

/// Parse rate of the CSV-ish input (bytes per second per vCPU).
pub const PARSE_BW: f64 = 45.0 * 1024.0 * 1024.0;

/// Monte Carlo sampling rate (points per second per vCPU): two
/// `Random.nextDouble()` calls plus arithmetic, Java speed. Pins Fig. 2b's
/// absolute throughput (8.4 G points/s at 800 threads).
pub const MONTE_CARLO_POINTS_PER_SEC: f64 = 11.0e6;

/// One k-means assignment pass over a partition: distance to `k` centroids
/// for every point.
pub fn kmeans_assign_cost(scale: &DatasetScale, k: u32) -> Duration {
    let ops = scale.points_per_partition() as f64 * k as f64 * scale.dims as f64;
    Duration::from_secs_f64(ops * KMEANS_PER_POINT_CENTROID_DIM_NS * 1e-9)
}

/// One logistic-regression gradient pass over a partition.
pub fn logreg_grad_cost(scale: &DatasetScale) -> Duration {
    let ops = scale.points_per_partition() as f64 * scale.dims as f64;
    Duration::from_secs_f64(ops * LOGREG_PER_POINT_DIM_NS * 1e-9)
}

/// Time to fetch and parse one partition from the object store.
pub fn partition_load_cost(scale: &DatasetScale) -> Duration {
    let bytes = scale.partition_bytes() as f64;
    Duration::from_secs_f64(bytes / S3_READ_BW + bytes / PARSE_BW)
}

/// Virtual time to draw `points` Monte Carlo samples on one vCPU.
pub fn monte_carlo_cost(points: u64) -> Duration {
    Duration::from_secs_f64(points as f64 / MONTE_CARLO_POINTS_PER_SEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_defaults() {
        let s = DatasetScale::default();
        assert_eq!(s.points_per_partition(), 695_000);
        // ~100 GB / 80 ≈ 1.3 GB per partition within a factor.
        let gb = s.partition_bytes() as f64 / 1e9;
        assert!(gb > 0.4 && gb < 1.5, "partition ≈ {gb} GB");
    }

    #[test]
    fn kmeans_cost_matches_fitted_slope() {
        // Fit: iteration ≈ 0.088 × k seconds (EXPERIMENTS.md).
        let s = DatasetScale::default();
        for k in [25u32, 100, 200] {
            let per_iter = kmeans_assign_cost(&s, k).as_secs_f64();
            let expected = 0.088 * k as f64;
            assert!(
                (per_iter - expected).abs() / expected < 0.30,
                "k={k}: {per_iter}s vs fitted {expected}s"
            );
        }
    }

    #[test]
    fn logreg_cost_near_half_second() {
        let s = DatasetScale::default();
        let c = logreg_grad_cost(&s).as_secs_f64();
        assert!((0.4..0.7).contains(&c), "logreg pass = {c}s");
    }

    #[test]
    fn load_cost_tens_of_seconds() {
        // Table 3: total minus iterations leaves ~60 s for load+parse at
        // k=25; our model should be in that ballpark.
        let c = partition_load_cost(&DatasetScale::default()).as_secs_f64();
        assert!((10.0..40.0).contains(&c), "load+parse = {c}s");
    }

    #[test]
    fn monte_carlo_rate_pins_fig2b() {
        // 800 threads at this rate ≈ 8.8 G points/s (paper: 8.4 G).
        let total = 800.0 * MONTE_CARLO_POINTS_PER_SEC;
        assert!((7.0e9..10.0e9).contains(&total));
        assert_eq!(monte_carlo_cost(11_000_000), Duration::from_secs(1));
    }
}
