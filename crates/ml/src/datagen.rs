//! Deterministic synthetic datasets in the style of the paper's spark-perf generator,
//! which the paper uses to generate its 100 GB / 55.6 M-element input.
//!
//! We run the *math* on a scaled-down sample (the shapes of convergence
//! curves do not need 100 GB) while the *cost model*
//! ([`crate::cost`]) charges virtual time as if each partition held its
//! paper-scale share. Partitions are generated reproducibly from
//! `(seed, partition index)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dimensionality used throughout the paper's ML experiments.
pub const PAPER_DIMS: usize = 100;

/// A k-means partition: dense points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointsPartition {
    /// Points, each of `dims` coordinates.
    pub points: Vec<Vec<f64>>,
}

/// A logistic-regression partition: labelled points (`label` ∈ {0, 1}).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabeledPartition {
    /// Feature vectors.
    pub points: Vec<Vec<f64>>,
    /// Labels, same length as `points`.
    pub labels: Vec<f64>,
}

fn part_rng(seed: u64, partition: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (partition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The "true" cluster centers points are drawn around (shared by every
/// partition so the global structure is coherent).
pub fn true_centers(seed: u64, k: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    (0..k).map(|_| (0..dims).map(|_| rng.random_range(-10.0..10.0)).collect()).collect()
}

/// Generates one k-means partition: `n` points around `k` shared centers
/// with unit noise.
pub fn kmeans_partition(
    seed: u64,
    partition: usize,
    n: usize,
    dims: usize,
    k: usize,
) -> PointsPartition {
    let centers = true_centers(seed, k, dims);
    let mut rng = part_rng(seed, partition);
    let points = (0..n)
        .map(|_| {
            let c = &centers[rng.random_range(0..k)];
            c.iter().map(|&x| x + gaussian(&mut rng)).collect()
        })
        .collect();
    PointsPartition { points }
}

/// The "true" weight vector behind the logistic-regression labels.
pub fn true_weights(seed: u64, dims: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(17).wrapping_add(3));
    (0..dims).map(|_| rng.random_range(-1.0..1.0)).collect()
}

/// Generates one labelled partition: features ~ N(0,1); labels from a
/// logistic model with 10 % flip noise.
pub fn logreg_partition(seed: u64, partition: usize, n: usize, dims: usize) -> LabeledPartition {
    let w = true_weights(seed, dims);
    let mut rng = part_rng(seed, partition);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..dims).map(|_| gaussian(&mut rng)).collect();
        let z: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        let p = 1.0 / (1.0 + (-z).exp());
        let mut y = if p > 0.5 { 1.0 } else { 0.0 };
        if rng.random_range(0.0..1.0) < 0.1 {
            y = 1.0 - y;
        }
        points.push(x);
        labels.push(y);
    }
    LabeledPartition { points, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_deterministic_and_distinct() {
        let a = kmeans_partition(1, 0, 50, 10, 3);
        let b = kmeans_partition(1, 0, 50, 10, 3);
        let c = kmeans_partition(1, 1, 50, 10, 3);
        let d = kmeans_partition(2, 0, 50, 10, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.points.len(), 50);
        assert_eq!(a.points[0].len(), 10);
    }

    #[test]
    fn kmeans_points_cluster_around_true_centers() {
        let k = 4;
        let dims = 8;
        let part = kmeans_partition(7, 0, 400, dims, k);
        let centers = true_centers(7, k, dims);
        // Every point should be near (within a few sigma of) some center.
        for p in &part.points {
            let min_d2: f64 = centers
                .iter()
                .map(|c| c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!(min_d2 < (6.0 * 6.0) * dims as f64, "point far from all centers: {min_d2}");
        }
    }

    #[test]
    fn logreg_labels_follow_true_weights() {
        let dims = 12;
        let part = logreg_partition(9, 0, 500, dims);
        let w = true_weights(9, dims);
        let mut agree = 0;
        for (x, y) in part.points.iter().zip(&part.labels) {
            let z: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
            let pred = if z > 0.0 { 1.0 } else { 0.0 };
            if (pred - y).abs() < 0.5 {
                agree += 1;
            }
        }
        // 10% label noise => ~90% agreement.
        assert!(agree > 400, "only {agree}/500 labels agree with the generator");
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn partitions_round_trip_through_codec() {
        let part = kmeans_partition(3, 2, 20, 5, 2);
        let bytes = crucial::codec::to_bytes(&part).expect("encode");
        let back: PointsPartition = crucial::codec::from_bytes(&bytes).expect("decode");
        assert_eq!(part, back);
        let part = logreg_partition(3, 2, 20, 5);
        let bytes = crucial::codec::to_bytes(&part).expect("encode");
        let back: LabeledPartition = crucial::codec::from_bytes(&bytes).expect("decode");
        assert_eq!(part, back);
    }
}
