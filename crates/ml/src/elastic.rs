//! The elasticity experiment: Fig. 8's serving workload under a 3× traffic
//! ramp, with the control plane closed-loop instead of an operator.
//!
//! A fleet of paced serving functions reads a sharded model from the DSO
//! tier (one inference = one shard scoring call + local compute). Offered load
//! ramps 1× → 3× → 1× across three equal phases. Two deployments are
//! compared by the harness:
//!
//! * **static** — the initial DSO fleet for the whole run; the 3× phase
//!   saturates it (and trips the admission controller),
//! * **autoscaled** — `controlplane::spawn_controlplane` watches the
//!   metrics registry and grows/drains the fleet, so delivered throughput
//!   tracks offered load.
//!
//! The report carries both sides of the elasticity trade: delivered
//! throughput per second, and cost — FaaS GB-seconds (execution + idle
//! pool tails) plus DSO node-seconds priced at [`NODE_SECOND_USD`].

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crucial::{
    function_name, join_all, spawn_controlplane, AdmissionConfig, Arithmetic, CrucialConfig,
    CtlConfig, CtlEvent, CtlHandle, Deployment, FaasConfig, FnEnv, MetricsRegistry, PrewarmConfig,
    RunResult, Runnable, Sim, SimTime, TargetTracking, FULL_VCPU_MB,
};

/// Dollars per DSO-node-second, from the paper's server tier (r5.2xlarge,
/// $0.504/h on-demand in us-east-1, 2019) — the VM-side half of the cost
/// model next to [`faas::Pricing`]'s GB-seconds.
pub const NODE_SECOND_USD: f64 = 0.504 / 3600.0;

/// Parameters of the elasticity experiment.
#[derive(Clone, Debug)]
pub struct ElasticConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Serving functions active in the 1× phases.
    pub base_workers: u32,
    /// Serving functions active in the 3× phase.
    pub peak_workers: u32,
    /// Interval between inference attempts per worker (one worker offers
    /// `1/pace` inferences per second).
    pub pace: Duration,
    /// Model shards (one DSO `Arithmetic` scoring object each).
    pub shards: u32,
    /// Multiplications per scoring call — sets the per-call server cost
    /// (55 ns each), hence per-node capacity.
    pub op_mults: u32,
    /// Replication factor of the shards.
    pub rf: u8,
    /// DSO nodes at the start (the static run keeps this forever).
    pub initial_nodes: u32,
    /// Worker threads per DSO node.
    pub dso_workers_per_node: u32,
    /// Length of each of the three phases (1×, 3×, 1×).
    pub phase: Duration,
    /// Local compute per inference inside the function.
    pub per_inference_compute: Duration,
    /// Admission control installed on every DSO node.
    pub admission: Option<AdmissionConfig>,
    /// Whether to run the control plane.
    pub autoscale: bool,
    /// Control-plane parameters (used when `autoscale`).
    pub ctl: CtlConfig,
    /// Target-tracking setpoint: requests/s one node serves comfortably.
    pub target_per_node: f64,
    /// FaaS platform configuration — the cold-start tier under test
    /// (classic vs snapshot restore) and the pricing the cost columns use.
    pub faas: FaasConfig,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        // One scoring call costs the serving node ≈ 35 µs + 30 k × 55 ns
        // ≈ 1.69 ms, so a 1-worker node serves ≈ 590 calls/s: the 1×
        // phases (400/s offered) fit one node, the 3× phase (1200/s) needs
        // three.
        ElasticConfig {
            seed: 42,
            base_workers: 24,
            peak_workers: 72,
            pace: Duration::from_millis(60),
            shards: 32,
            op_mults: 30_000,
            rf: 1,
            initial_nodes: 1,
            dso_workers_per_node: 1,
            phase: Duration::from_secs(15),
            per_inference_compute: Duration::from_millis(2),
            admission: Some(AdmissionConfig { max_queue_depth: 32, ..AdmissionConfig::default() }),
            autoscale: true,
            ctl: CtlConfig {
                reconcile_interval: Duration::from_secs(1),
                min_nodes: 1,
                max_nodes: 4,
                scale_out_cooldown: Duration::from_secs(3),
                drain_cooldown: Duration::from_secs(8),
                prewarm: None, // filled per-run with the worker's function name
                checkpoint_interval: None,
            },
            target_per_node: 500.0,
            faas: FaasConfig::default(),
        }
    }
}

/// Result of one elastic run.
#[derive(Clone, Debug)]
pub struct ElasticReport {
    /// `(second, inferences completed in that second)`.
    pub per_second: Vec<(u64, u64)>,
    /// Total completed inferences.
    pub total: u64,
    /// Analytic offered load per phase, inferences/s: `(1x, 3x, 1x)`.
    pub offered: (f64, f64, f64),
    /// Scale-out actuations.
    pub scale_outs: usize,
    /// Drain actuations.
    pub drains: usize,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// The control plane's rendered decision log (empty when static).
    pub decision_log: String,
    /// DSO node-seconds consumed (nodes integrated over the run).
    pub node_seconds: f64,
    /// FaaS execution GB-seconds.
    pub gb_seconds: f64,
    /// FaaS idle-pool GB-seconds (retired warm containers).
    pub idle_gb_seconds: f64,
    /// Snapshot-storage GB-seconds held over the run (zero under classic).
    pub snapshot_gb_seconds: f64,
    /// Dollar cost: FaaS (execution + idle + requests) and DSO nodes.
    pub faas_cost_usd: f64,
    /// Dollar cost of the DSO fleet at [`NODE_SECOND_USD`].
    pub node_cost_usd: f64,
    /// The run's metrics registry, for harness-side tables.
    pub metrics: MetricsRegistry,
}

impl ElasticReport {
    /// Mean delivered rate over `[from, to)` seconds.
    pub fn mean_rate(&self, from: u64, to: u64) -> f64 {
        if to <= from {
            return 0.0;
        }
        let sum: u64 =
            self.per_second.iter().filter(|(s, _)| *s >= from && *s < to).map(|(_, n)| *n).sum();
        sum as f64 / (to - from) as f64
    }

    /// Delivered / offered over the tail of the 3× phase (the last 40%,
    /// after the scaler has had time to react) — the headline "tracking"
    /// number.
    pub fn peak_tracking(&self, cfg: &ElasticConfig) -> f64 {
        let phase = cfg.phase.as_secs();
        let from = 2 * phase - phase * 2 / 5;
        self.mean_rate(from, 2 * phase) / self.offered.1
    }
}

/// One serving function: a rate-limited loop scoring against a model
/// shard and computing, `1/pace` attempts per second until the deadline.
/// Falling behind (saturation, shed-retry backoff) lowers delivered
/// throughput without accumulating a burst debt.
#[derive(Clone, Serialize, Deserialize)]
pub struct ElasticWorker {
    /// Worker index (staggers the shard access pattern).
    pub worker_id: u32,
    /// Model shards to cycle through.
    pub shards: u32,
    /// Replication factor.
    pub rf: u8,
    /// Multiplications per scoring call.
    pub op_mults: u32,
    /// Attempt interval in nanoseconds.
    pub pace_nanos: u64,
    /// Local compute per inference, nanoseconds.
    pub compute_nanos: u64,
    /// Virtual-time deadline in nanoseconds.
    pub deadline_nanos: u64,
}

impl Runnable for ElasticWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let completions = env.blackboard().series("elastic-completions");
        let errors = env.blackboard().series("elastic-errors");
        let model: Vec<Arithmetic> = (0..self.shards)
            .map(|i| Arithmetic::persistent(&format!("shard-{i}"), 1.0, self.rf))
            .collect();
        let pace = Duration::from_nanos(self.pace_nanos);
        let compute = Duration::from_nanos(self.compute_nanos);
        let deadline = SimTime::from_nanos(self.deadline_nanos);
        let mut next = env.ctx().now();
        let mut n = self.worker_id as usize;
        while env.ctx().now() < deadline {
            let shard = &model[n % model.len()];
            n += 1;
            let (ctx, dso) = env.dso();
            match shard.mul_n(ctx, dso, 1.0, self.op_mults) {
                Ok(_) => {
                    env.compute(compute);
                    let now = env.ctx().now();
                    completions.push(now, 1.0);
                }
                Err(_) => {
                    // Retries exhausted under overload: back off and try
                    // the next slot.
                    let now = env.ctx().now();
                    errors.push(now, 1.0);
                    env.ctx().sleep(Duration::from_millis(100));
                }
            }
            // Rate limiting without burst debt: a worker that fell behind
            // resumes at the current time, it does not replay missed slots.
            let now = env.ctx().now();
            next = (next + pace).max(now);
            if next > now {
                env.ctx().sleep(next - now);
            }
        }
        Ok(())
    }
}

/// Integrates the live-node count over the run from the decision log.
fn node_seconds(initial: u32, events: &[CtlEvent], t_end: SimTime) -> f64 {
    let mut nodes = f64::from(initial);
    let mut last = SimTime::ZERO;
    let mut acc = 0.0;
    for e in events {
        let (at, after) = match e {
            CtlEvent::ScaleOut { at, nodes } => (*at, *nodes),
            CtlEvent::Drain { at, nodes, .. } => (*at, *nodes),
            CtlEvent::Prewarm { .. } | CtlEvent::Checkpoint { .. } => continue,
        };
        acc += nodes * (at.saturating_duration_since(last)).as_secs_f64();
        nodes = f64::from(after);
        last = at;
    }
    acc + nodes * t_end.saturating_duration_since(last).as_secs_f64()
}

/// Runs the elastic serving experiment.
pub fn run_elastic(cfg: &ElasticConfig) -> ElasticReport {
    run_elastic_with(cfg, |_| {})
}

/// [`run_elastic`] with a setup hook on the fresh `Sim` (e.g. to install a
/// tracer). The metrics registry is installed internally — the control
/// plane reads it — and returned in the report.
pub fn run_elastic_with(cfg: &ElasticConfig, setup: impl FnOnce(&Sim)) -> ElasticReport {
    let mut sim = Sim::new(cfg.seed);
    let registry = MetricsRegistry::new();
    sim.set_metrics(&registry);
    setup(&sim);
    let mut ccfg = CrucialConfig { dso_nodes: cfg.initial_nodes, ..CrucialConfig::default() };
    ccfg.dso.workers_per_node = cfg.dso_workers_per_node;
    ccfg.dso.admission = cfg.admission;
    ccfg.faas = cfg.faas.clone();
    let dep = Deployment::start(&sim, ccfg);
    dep.register::<ElasticWorker>();
    let threads = dep.threads();
    let dso_handle = dep.dso_handle();
    let blackboard = dep.blackboard().clone();
    let faas = dep.faas.clone();
    let cluster = Arc::new(Mutex::new(dep.dso));
    let ctl = if cfg.autoscale {
        let mut ctl_cfg = cfg.ctl.clone();
        if ctl_cfg.prewarm.is_none() {
            // Sized from the platform's cold-start tier: under snapshot
            // restores the penalty drops below the threshold and the
            // daemon stops buying provisioned floors.
            ctl_cfg.prewarm = Some(PrewarmConfig::for_platform(
                &cfg.faas,
                FULL_VCPU_MB,
                &function_name::<ElasticWorker>(),
                8,
            ));
        }
        spawn_controlplane(
            &sim,
            cluster.clone(),
            Some(faas.clone()),
            registry.clone(),
            Box::new(TargetTracking::new(cfg.target_per_node)),
            ctl_cfg,
        )
    } else {
        CtlHandle::default()
    };
    let t_end = SimTime::ZERO + 3 * cfg.phase;
    let cfg2 = cfg.clone();
    sim.spawn("elastic-master", move |ctx| {
        let worker = |worker_id: u32, deadline: SimTime| ElasticWorker {
            worker_id,
            shards: cfg2.shards,
            rf: cfg2.rf,
            op_mults: cfg2.op_mults,
            pace_nanos: cfg2.pace.as_nanos() as u64,
            compute_nanos: cfg2.per_inference_compute.as_nanos() as u64,
            deadline_nanos: deadline.as_nanos(),
        };
        // Install the model shards before the fleet starts.
        let mut cli = dso_handle.connect();
        for i in 0..cfg2.shards {
            let shard = Arithmetic::persistent(&format!("shard-{i}"), 1.0, cfg2.rf);
            shard.mul(ctx, &mut cli, 1.0).expect("model installs");
        }
        // Base fleet serves the whole run.
        let base: Vec<ElasticWorker> =
            (0..cfg2.base_workers).map(|i| worker(i, SimTime::ZERO + 3 * cfg2.phase)).collect();
        let mut handles = threads.start_all(ctx, &base);
        // The 3× ramp: extra workers for the middle phase only.
        let ramp_at = SimTime::ZERO + cfg2.phase;
        if ramp_at > ctx.now() {
            ctx.sleep(ramp_at.saturating_duration_since(ctx.now()));
        }
        let extra: Vec<ElasticWorker> = (cfg2.base_workers..cfg2.peak_workers)
            .map(|i| worker(i, SimTime::ZERO + 2 * cfg2.phase))
            .collect();
        handles.extend(threads.start_all(ctx, &extra));
        join_all(ctx, handles).expect("serving functions finish");
    });
    sim.run_until_idle().expect_quiescent();
    let points = blackboard.series("elastic-completions").points();
    let mut buckets = std::collections::BTreeMap::<u64, u64>::new();
    for (t, _) in &points {
        *buckets.entry(t.as_nanos() / 1_000_000_000).or_insert(0) += 1;
    }
    let events = ctl.events();
    let per_worker = 1.0 / cfg.pace.as_secs_f64();
    let node_s = if cfg.autoscale {
        node_seconds(cfg.initial_nodes, &events, t_end)
    } else {
        f64::from(cfg.initial_nodes) * t_end.as_secs_f64()
    };
    let billing = faas.billing();
    let gb_seconds = billing.gb_seconds();
    let idle_gb_seconds = billing.idle_gb_seconds().max(0.0);
    let snapshot_gb_seconds = billing.snapshot_gb_seconds(t_end);
    let pricing = cfg.faas.pricing;
    ElasticReport {
        per_second: buckets.into_iter().collect(),
        total: points.len() as u64,
        offered: (
            f64::from(cfg.base_workers) * per_worker,
            f64::from(cfg.peak_workers) * per_worker,
            f64::from(cfg.base_workers) * per_worker,
        ),
        scale_outs: ctl.scale_outs(),
        drains: ctl.drains(),
        shed: registry.counter_value("dso.shed"),
        decision_log: ctl.decision_log(),
        node_seconds: node_s,
        gb_seconds,
        idle_gb_seconds,
        snapshot_gb_seconds,
        faas_cost_usd: billing.cost(pricing)
            + idle_gb_seconds * pricing.per_gb_second
            + billing.snapshot_cost(pricing, t_end),
        node_cost_usd: node_s * NODE_SECOND_USD,
        metrics: registry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A debug-build-friendly scale: ~2k operations per run. One node
    /// serves ≈ 150 scoring calls/s (120 k multiplications each), the 1×
    /// phases offer 60/s, the 3× phase 180/s.
    fn tiny() -> ElasticConfig {
        let mut cfg = ElasticConfig {
            seed: 3,
            base_workers: 6,
            peak_workers: 18,
            pace: Duration::from_millis(100),
            op_mults: 120_000,
            phase: Duration::from_secs(6),
            target_per_node: 120.0,
            admission: Some(AdmissionConfig { max_queue_depth: 8, ..AdmissionConfig::default() }),
            ..ElasticConfig::default()
        };
        // With 6 s phases, the default 8 s drain cooldown (counted from the
        // last scale-out) would push the drain past the end of the run.
        cfg.ctl.drain_cooldown = Duration::from_secs(5);
        cfg
    }

    #[test]
    fn autoscaler_tracks_the_ramp_and_drains_after() {
        let cfg = tiny();
        let r = run_elastic(&cfg);
        assert!(r.scale_outs >= 1, "ramp must trigger a scale-out:\n{}", r.decision_log);
        assert!(r.drains >= 1, "ramp-down must trigger a drain:\n{}", r.decision_log);
        assert!(r.total > 0);
    }

    #[test]
    fn static_fleet_saturates_where_autoscaled_tracks() {
        let auto = run_elastic(&tiny());
        let stat = run_elastic(&ElasticConfig { autoscale: false, ..tiny() });
        let cfg = tiny();
        let auto_track = auto.peak_tracking(&cfg);
        let stat_track = stat.peak_tracking(&cfg);
        assert!(
            auto_track > stat_track,
            "autoscaling must beat static during the 3x phase: auto={auto_track:.2} static={stat_track:.2}"
        );
        assert!(stat.shed > 0, "the saturated static fleet must shed");
    }

    #[test]
    fn identically_seeded_runs_make_identical_decisions() {
        let a = run_elastic(&tiny());
        let b = run_elastic(&tiny());
        assert!(!a.decision_log.is_empty());
        assert_eq!(a.decision_log, b.decision_log, "decision log must be deterministic");
    }
}
