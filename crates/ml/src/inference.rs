//! Model serving over persistent shared state (§6.4, Fig. 8): a k-means
//! model of 200 centroids replicated `rf = 2` across 3 DSO nodes serves
//! inference requests from 100 cloud functions for several minutes, while
//! one storage node crashes and a fresh one joins.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crucial::{
    join_all, AtomicByteArray, BatchOp, ConsistencyMode, CrucialConfig, Deployment, FnEnv,
    RunResult, Runnable, Sim, SimTime,
};

/// Parameters of the serving experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Concurrent serving functions. Paper: 100.
    pub threads: u32,
    /// Model size in centroid objects. Paper: 200.
    pub centroids: u32,
    /// Dimensions per centroid.
    pub dims: u32,
    /// Replication factor of the model objects. Paper: 2.
    pub rf: u8,
    /// Initial DSO nodes. Paper: 3.
    pub dso_nodes: u32,
    /// Worker threads per DSO node (lower it to saturate the tier with a
    /// scaled-down client population).
    pub dso_workers_per_node: u32,
    /// Experiment length. Paper: 6 min.
    pub duration: Duration,
    /// When to crash a node (virtual time), if at all.
    pub crash_at: Option<Duration>,
    /// When to add a fresh node, if at all.
    pub add_at: Option<Duration>,
    /// Local distance computation per inference on one vCPU.
    pub per_inference_compute: Duration,
    /// Fetch the whole model with one batched invocation per node instead
    /// of `centroids` sequential round-trips.
    pub batch_reads: bool,
    /// Routing of the (read-only) centroid fetches.
    pub consistency: ConsistencyMode,
    /// Client-side read cache (version-validated).
    pub read_cache: bool,
    /// Lease during which cached reads skip the validation round-trip.
    pub cache_lease: Option<Duration>,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            seed: 1,
            threads: 100,
            centroids: 200,
            dims: 100,
            rf: 2,
            dso_nodes: 3,
            dso_workers_per_node: 8,
            duration: Duration::from_secs(360),
            crash_at: Some(Duration::from_secs(120)),
            add_at: Some(Duration::from_secs(240)),
            per_inference_compute: Duration::from_millis(8),
            batch_reads: false,
            consistency: ConsistencyMode::default(),
            read_cache: false,
            cache_lease: None,
        }
    }
}

/// Report: inference completions bucketed per second.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// `(second, inferences completed in that second)`.
    pub per_second: Vec<(u64, u64)>,
    /// Total completed inferences.
    pub total: u64,
}

impl InferenceReport {
    /// Mean rate over `[from, to)` seconds; seconds without completions
    /// count as zero.
    pub fn mean_rate(&self, from: u64, to: u64) -> f64 {
        if to <= from {
            return 0.0;
        }
        let sum: u64 =
            self.per_second.iter().filter(|(s, _)| *s >= from && *s < to).map(|(_, n)| *n).sum();
        sum as f64 / (to - from) as f64
    }
}

/// The serving function: loops until the deadline, each inference reading
/// the whole model (200 centroid objects) and computing distances.
#[derive(Clone, Serialize, Deserialize)]
pub struct InferenceWorker {
    /// Worker index.
    pub thread_id: u32,
    /// Shared configuration.
    pub cfg: InferenceConfig,
    /// Virtual-time deadline in nanoseconds.
    pub deadline_nanos: u64,
}

impl Runnable for InferenceWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let completions = env.blackboard().series("inference-completions");
        let errors = env.blackboard().series("inference-errors");
        let model: Vec<AtomicByteArray> = (0..self.cfg.centroids)
            .map(|i| AtomicByteArray::persistent(&format!("centroid-{i}"), Vec::new(), self.cfg.rf))
            .collect();
        let batch: Vec<BatchOp> = if self.cfg.batch_reads {
            model.iter().map(|c| c.raw().read_op("get", &())).collect()
        } else {
            Vec::new()
        };
        let deadline = SimTime::from_nanos(self.deadline_nanos);
        while env.ctx().now() < deadline {
            let mut ok = true;
            if self.cfg.batch_reads {
                let (ctx, dso) = env.dso();
                ok = dso.invoke_batch(ctx, &batch).iter().all(Result::is_ok);
            } else {
                for c in &model {
                    let (ctx, dso) = env.dso();
                    if c.get(ctx, dso).is_err() {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                // Node failure window: back off briefly and retry the
                // whole inference.
                let now = env.ctx().now();
                errors.push(now, 1.0);
                env.ctx().sleep(Duration::from_millis(100));
                continue;
            }
            env.compute(self.cfg.per_inference_compute);
            let now = env.ctx().now();
            completions.push(now, 1.0);
        }
        Ok(())
    }
}

/// Runs the full Fig. 8 experiment: train-equivalent model install, 100
/// serving functions, node crash and node arrival per `cfg`.
pub fn run_inference_serving(cfg: &InferenceConfig) -> InferenceReport {
    let mut sim = Sim::new(cfg.seed);
    let ccfg = CrucialConfig { dso_nodes: cfg.dso_nodes, ..CrucialConfig::default() };
    let mut ccfg = ccfg;
    ccfg.dso.workers_per_node = cfg.dso_workers_per_node;
    ccfg.dso.consistency = cfg.consistency;
    ccfg.dso.read_cache = cfg.read_cache;
    ccfg.dso.cache_lease = cfg.cache_lease;
    let mut dep = Deployment::start(&sim, ccfg);
    dep.register::<InferenceWorker>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let blackboard = dep.blackboard().clone();
    let done: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let done2 = done.clone();
    let cfg2 = cfg.clone();
    sim.spawn("inference-master", move |ctx| {
        // Install the trained model (§6.4: "the k-means model trained with
        // our system"): one persistent byte array per centroid.
        let mut cli = dso.connect();
        let payload = vec![0u8; cfg2.dims as usize * 8];
        for i in 0..cfg2.centroids {
            let c = AtomicByteArray::persistent(&format!("centroid-{i}"), Vec::new(), cfg2.rf);
            c.set(ctx, &mut cli, &payload).expect("model installs");
        }
        let deadline_nanos = (ctx.now() + cfg2.duration).as_nanos();
        let workers: Vec<InferenceWorker> = (0..cfg2.threads)
            .map(|thread_id| InferenceWorker { thread_id, cfg: cfg2.clone(), deadline_nanos })
            .collect();
        let handles = threads.start_all(ctx, &workers);
        join_all(ctx, handles).expect("serving functions finish");
        *done2.lock() = true;
    });
    // Drive the fault schedule from the harness, like an operator would.
    let mut crash = cfg.crash_at;
    let mut add = cfg.add_at;
    loop {
        let next = match (crash, add) {
            (Some(c), Some(a)) => Some(c.min(a)),
            (Some(c), None) => Some(c),
            (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        match next {
            Some(t) => {
                sim.run_until(SimTime::ZERO + t);
                if crash == Some(t) {
                    // Crash the last of the initial nodes.
                    let idx = (cfg.dso_nodes - 1) as usize;
                    dep.dso.crash_node(&sim, idx);
                    crash = None;
                } else {
                    dep.dso.add_node(&sim);
                    add = None;
                }
            }
            None => break,
        }
    }
    sim.run_until_idle().expect_quiescent();
    assert!(*done.lock(), "master must complete");
    // Bucket completions per second.
    let points = blackboard.series("inference-completions").points();
    let mut buckets = std::collections::BTreeMap::<u64, u64>::new();
    for (t, _) in &points {
        *buckets.entry(t.as_nanos() / 1_000_000_000).or_insert(0) += 1;
    }
    let errors = blackboard.series("inference-errors").points();
    if std::env::var("INFER_DEBUG").is_ok() {
        let mut ebuckets = std::collections::BTreeMap::<u64, u64>::new();
        for (t, _) in &errors {
            *ebuckets.entry(t.as_nanos() / 1_000_000_000).or_insert(0) += 1;
        }
        for (s, n) in &ebuckets {
            eprintln!("errors t={s}s n={n}");
        }
        eprintln!("total errors: {}", errors.len());
    }
    InferenceReport { per_second: buckets.into_iter().collect(), total: points.len() as u64 }
}

/// Debug variant printing per-second completions and errors (scratch).
#[doc(hidden)]
pub fn run_inference_serving_debug(cfg: &InferenceConfig) {
    let r = run_inference_serving(cfg);
    for (s, n) in &r.per_second {
        println!("t={s:>3}s inf/s={n}");
    }
    println!("total={}", r.total);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> InferenceConfig {
        InferenceConfig {
            seed: 2,
            threads: 12,
            centroids: 24,
            dims: 100,
            rf: 2,
            dso_nodes: 3,
            dso_workers_per_node: 8,
            duration: Duration::from_secs(30),
            crash_at: Some(Duration::from_secs(10)),
            add_at: Some(Duration::from_secs(20)),
            per_inference_compute: Duration::from_millis(8),
            batch_reads: false,
            consistency: ConsistencyMode::default(),
            read_cache: false,
            cache_lease: None,
        }
    }

    #[test]
    fn serving_survives_crash_and_recovers() {
        let report = run_inference_serving(&tiny_cfg());
        assert!(report.total > 100, "made progress: {}", report.total);
        // Steady state before the crash.
        let before = report.mean_rate(4, 10);
        // Window right after the crash (detection + failover).
        let during = report.mean_rate(11, 16);
        // After the new node joined and rebalancing settled.
        let after = report.mean_rate(25, 30);
        assert!(before > 0.0);
        assert!(during < before, "crash must dent throughput: before={before} during={during}");
        assert!(after > during, "new node must restore throughput: during={during} after={after}");
    }

    #[test]
    fn batched_reads_beat_sequential_round_trips() {
        let mut seq = tiny_cfg();
        seq.crash_at = None;
        seq.add_at = None;
        seq.duration = Duration::from_secs(15);
        let mut bat = seq.clone();
        bat.batch_reads = true;
        let r_seq = run_inference_serving(&seq);
        let r_bat = run_inference_serving(&bat);
        // 24 sequential round-trips vs one batched message per node: the
        // model fetch shrinks from ~24 RTTs to ~1, so total completions
        // in the same virtual time must rise.
        assert!(
            r_bat.total > r_seq.total,
            "batching must raise throughput: sequential={} batched={}",
            r_seq.total,
            r_bat.total
        );
    }

    #[test]
    fn no_faults_means_steady_throughput() {
        let mut cfg = tiny_cfg();
        cfg.crash_at = None;
        cfg.add_at = None;
        cfg.duration = Duration::from_secs(20);
        let report = run_inference_serving(&cfg);
        let early = report.mean_rate(4, 10);
        let late = report.mean_rate(12, 18);
        assert!(early > 0.0);
        let rel = (late - early).abs() / early;
        assert!(rel < 0.35, "steady state: early={early} late={late}");
    }
}
