//! k-means clustering (§6.2): the core math plus four complete
//! implementations — Crucial cloud threads (Listing 2), the mini-Spark
//! baseline, the Redis-backed Crucial variant, and a single-machine
//! multi-threaded solution (Fig. 3's VM baselines).

use std::sync::Arc;
use std::time::Duration;

use crucial::{
    join_all, spawn_redis, AtomicLong, CrucialConfig, CyclicBarrier, Deployment, FnEnv,
    RedisConfig, RedisHandle, RunResult, Runnable, ScriptRegistry, Sim, SimTime,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sparklite::{spawn_cluster, ClusterPricing, LocalVm, SparkCostModel, TaskRegistry};

use crate::cost::{kmeans_assign_cost, partition_load_cost, DatasetScale};
use crate::datagen::kmeans_partition;
use crate::objects::{
    register_ml_objects, CentroidsHandle, CentroidsInit, DeltaHandle, GlobalCentroids,
};

// ---------------------------------------------------------------------------
// Core math
// ---------------------------------------------------------------------------

/// One assignment pass: per-cluster coordinate sums, per-cluster counts,
/// and the within-cluster sum of squared errors.
pub fn assign_partials(
    points: &[Vec<f64>],
    centroids: &[Vec<f64>],
) -> (Vec<Vec<f64>>, Vec<u64>, f64) {
    let k = centroids.len();
    let dims = centroids.first().map_or(0, Vec::len);
    let mut sums = vec![vec![0.0; dims]; k];
    let mut counts = vec![0u64; k];
    let mut sse = 0.0;
    for p in points {
        let mut best = 0usize;
        let mut best_d2 = f64::INFINITY;
        for (c, centre) in centroids.iter().enumerate() {
            let d2: f64 = centre.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 < best_d2 {
                best_d2 = d2;
                best = c;
            }
        }
        for (s, x) in sums[best].iter_mut().zip(p) {
            *s += x;
        }
        counts[best] += 1;
        sse += best_d2;
    }
    (sums, counts, sse)
}

/// Random initial centroids in the data range, deterministic in `seed`.
pub fn initial_centroids(seed: u64, k: u32, dims: usize) -> Vec<Vec<f64>> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(0xC0FFEE));
    (0..k).map(|_| (0..dims).map(|_| rng.random_range(-10.0..10.0)).collect()).collect()
}

fn flatten(v: &[Vec<f64>]) -> Vec<f64> {
    v.iter().flatten().copied().collect()
}

fn unflatten(v: &[f64], dims: usize) -> Vec<Vec<f64>> {
    v.chunks(dims).map(<[f64]>::to_vec).collect()
}

// ---------------------------------------------------------------------------
// Configuration and report
// ---------------------------------------------------------------------------

/// Parameters shared by all k-means implementations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Simulation / data seed.
    pub seed: u64,
    /// Concurrent workers (cloud threads / partitions). Paper: 80.
    pub workers: u32,
    /// Clusters.
    pub k: u32,
    /// Iterations to run. Paper: 10 (Fig. 5).
    pub iterations: u32,
    /// Real points per worker for the math (scaled-down sample).
    pub sample_points: usize,
    /// Dimensions (kept at the paper's 100 so shared-state payloads are
    /// paper-sized).
    pub dims: usize,
    /// Paper-scale dataset for the cost model.
    pub scale: DatasetScale,
    /// Whether to model loading the input from the object store.
    pub include_load: bool,
    /// DSO storage nodes (paper: 1 for §6.2).
    pub dso_nodes: u32,
    /// Lambda memory (paper: 2048 MB for k-means).
    pub memory_mb: u32,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            seed: 1,
            workers: 80,
            k: 25,
            iterations: 10,
            sample_points: 200,
            dims: 100,
            scale: DatasetScale::default(),
            include_load: true,
            dso_nodes: 1,
            memory_mb: 2048,
        }
    }
}

impl KMeansConfig {
    /// The per-worker share of the dataset. Each worker processes one
    /// partition of `scale`, so the total input grows with the worker
    /// count — exactly the Fig. 3 scale-up setup.
    fn scale_for(&self) -> DatasetScale {
        self.scale
    }
}

/// Outcome of one k-means run.
#[derive(Clone, Debug)]
pub struct KMeansReport {
    /// Duration of the measured iteration phase (excludes provisioning,
    /// loading, cold starts — like Fig. 5).
    pub iteration_phase: Duration,
    /// End-to-end time including loading (like Table 3's "total").
    pub total: Duration,
    /// Within-cluster SSE after each iteration (the convergence signal).
    pub sse_per_iteration: Vec<f64>,
    /// Dollar cost of the run (Lambda GB-seconds or cluster time).
    pub cost_dollars: f64,
}

impl KMeansReport {
    /// Mean time per iteration.
    pub fn per_iteration(&self, iterations: u32) -> Duration {
        self.iteration_phase / iterations.max(1)
    }
}

// ---------------------------------------------------------------------------
// Crucial implementation (Listing 2)
// ---------------------------------------------------------------------------

/// The cloud-thread body of Listing 2.
#[derive(Clone, Serialize, Deserialize)]
pub struct KMeansWorker {
    /// Worker index (also the partition index).
    pub worker_id: u32,
    /// Shared configuration.
    pub cfg: KMeansConfig,
    /// `@Shared(key = "centroids")`.
    pub centroids: CentroidsHandle,
    /// `@Shared(key = "delta")`.
    pub delta: DeltaHandle,
    /// `@Shared(key = "iterations")`.
    pub iterations: AtomicLong,
    /// The synchronization object coordinating iterations.
    pub barrier: CyclicBarrier,
    /// Start/end instants of the measured phase (nanos), written by worker 0.
    pub t_start: AtomicLong,
    /// See `t_start`.
    pub t_end: AtomicLong,
}

impl Runnable for KMeansWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let scale = self.cfg.scale_for();
        // loadDatasetFragment(): S3 fetch + parse of this worker's share.
        if self.cfg.include_load {
            env.compute(partition_load_cost(&scale));
        }
        let part = kmeans_partition(
            self.cfg.seed,
            self.worker_id as usize,
            self.cfg.sample_points,
            self.cfg.dims,
            self.cfg.k as usize,
        );
        // Global barrier before measurement (footnote 8 of the paper).
        {
            let (ctx, dso) = env.dso();
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
            if self.worker_id == 0 {
                let now = ctx.now().as_nanos() as i64;
                self.t_start.set(ctx, dso, now).map_err(|e| e.to_string())?;
            }
        }
        let assign_cost = kmeans_assign_cost(&scale, self.cfg.k);
        for _ in 0..self.cfg.iterations {
            // Fetch current centroids (remote method, §4.2).
            let (generation, current) = {
                let (ctx, dso) = env.dso();
                self.centroids.read(ctx, dso).map_err(|e| e.to_string())?
            };
            // computeClusters(): the real math on the sample, charged at
            // paper scale.
            let (sums, counts, sse) = assign_partials(&part.points, &current);
            env.compute(assign_cost);
            {
                let (ctx, dso) = env.dso();
                // globalDelta.update(localDelta)
                self.delta.add(ctx, dso, generation, sse).map_err(|e| e.to_string())?;
                // centroids.update(localCentroids, localSizes)
                self.centroids.update(ctx, dso, &sums, &counts).map_err(|e| e.to_string())?;
                // barrier.await()
                self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
                // globalIterCount.compareAndSet(iterCount, iterCount + 1)
                let i = generation as i64;
                self.iterations.compare_and_set(ctx, dso, i, i + 1).map_err(|e| e.to_string())?;
            }
        }
        if self.worker_id == 0 {
            let (ctx, dso) = env.dso();
            let now = ctx.now().as_nanos() as i64;
            self.t_end.set(ctx, dso, now).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Runs k-means on Crucial (cloud threads + DSO), returning the report.
pub fn run_crucial_kmeans(cfg: &KMeansConfig) -> KMeansReport {
    run_crucial_kmeans_with(cfg, |_| {})
}

/// [`run_crucial_kmeans`] with a hook that runs against the fresh [`Sim`]
/// before any process is spawned — the place to install a
/// [`crucial::Tracer`] or [`crucial::MetricsRegistry`].
pub fn run_crucial_kmeans_with(cfg: &KMeansConfig, setup: impl FnOnce(&Sim)) -> KMeansReport {
    let mut sim = Sim::new(cfg.seed);
    setup(&sim);
    let mut ccfg = CrucialConfig { dso_nodes: cfg.dso_nodes, ..CrucialConfig::default() };
    register_ml_objects(&mut ccfg.registry);
    let dep = Deployment::start(&sim, ccfg);
    dep.register_with_memory::<KMeansWorker>(cfg.memory_mb);
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let billing = dep.faas.billing().clone();
    let pricing = dep.faas.config().pricing;
    let out: Arc<Mutex<Option<KMeansReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg = cfg.clone();
    sim.spawn("kmeans-master", move |ctx| {
        let init = CentroidsInit {
            k: cfg.k,
            dims: cfg.dims as u32,
            workers: cfg.workers,
            initial: flatten(&initial_centroids(cfg.seed, cfg.k, cfg.dims)),
        };
        let centroids = CentroidsHandle::new("centroids", init);
        let delta = DeltaHandle::new("delta");
        let iterations = AtomicLong::new("iterations");
        let barrier = CyclicBarrier::new("iter-barrier", cfg.workers);
        let t_start = AtomicLong::new("t-start");
        let t_end = AtomicLong::new("t-end");
        let workers: Vec<KMeansWorker> = (0..cfg.workers)
            .map(|worker_id| KMeansWorker {
                worker_id,
                cfg: cfg.clone(),
                centroids: centroids.clone(),
                delta: delta.clone(),
                iterations: iterations.clone(),
                barrier: barrier.clone(),
                t_start: t_start.clone(),
                t_end: t_end.clone(),
            })
            .collect();
        let t_total0 = ctx.now();
        let handles = threads.start_all(ctx, &workers);
        join_all(ctx, handles).expect("k-means cloud threads succeed");
        let total = ctx.now() - t_total0;
        let mut cli = dso.connect();
        let start_ns = t_start.get(ctx, &mut cli).expect("t_start written");
        let end_ns = t_end.get(ctx, &mut cli).expect("t_end written");
        let hist = delta.history(ctx, &mut cli).expect("delta history");
        let sse = hist.iter().map(|(_, s, _)| *s).collect();
        *out2.lock() = Some(KMeansReport {
            iteration_phase: Duration::from_nanos((end_ns - start_ns).max(0) as u64),
            total,
            sse_per_iteration: sse,
            cost_dollars: billing.cost(pricing),
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("master finished");
    report
}

// ---------------------------------------------------------------------------
// Spark implementation
// ---------------------------------------------------------------------------

/// The Spark cost model fitted for MLlib k-means on EMR (two aggregation
/// passes per iteration plus heavyweight stage scheduling; see
/// EXPERIMENTS.md).
pub fn spark_kmeans_cost_model() -> SparkCostModel {
    SparkCostModel {
        stage_overhead: Duration::from_millis(220),
        per_task_dispatch: Duration::from_millis(3),
        ..SparkCostModel::default()
    }
}

/// Runs the MLlib-style k-means baseline on the mini-Spark cluster.
pub fn run_spark_kmeans(cfg: &KMeansConfig) -> KMeansReport {
    let mut sim = Sim::new(cfg.seed);
    let scale = cfg.scale_for();
    let registry = TaskRegistry::new();
    {
        let k = cfg.k;
        let dims = cfg.dims;
        registry
            .register("km_load", move |_part, _b, _a| (Vec::new(), partition_load_cost(&scale)));
        registry.register("km_assign", move |part, bcast, _args| {
            let points: crate::datagen::PointsPartition =
                crucial::codec::from_bytes(part).expect("partition decodes");
            let centroids = unflatten(
                &crucial::codec::from_bytes::<Vec<f64>>(bcast).expect("broadcast decodes"),
                dims,
            );
            let (sums, counts, sse) = assign_partials(&points.points, &centroids);
            let out = crucial::codec::to_bytes(&(flatten(&sums), counts, sse)).expect("encode");
            (out, kmeans_assign_cost(&scale, k))
        });
        // MLlib's extra cost-evaluation pass per iteration: it reuses the
        // cached point norms, so its CPU cost is a small fraction of the
        // assignment pass — but it is a full extra *stage* (scheduling,
        // dispatch, collect), which is what hurts Spark in Fig. 5.
        registry.register("km_cost", move |part, bcast, _args| {
            let points: crate::datagen::PointsPartition =
                crucial::codec::from_bytes(part).expect("partition decodes");
            let centroids = unflatten(
                &crucial::codec::from_bytes::<Vec<f64>>(bcast).expect("broadcast decodes"),
                dims,
            );
            let (_, _, sse) = assign_partials(&points.points, &centroids);
            let out = crucial::codec::to_bytes(&sse).expect("encode");
            (out, kmeans_assign_cost(&scale, k) / 10)
        });
    }
    // 10 m5.2xlarge core nodes with 8 cores each (§6.2.2).
    let spark = spawn_cluster(&sim, 10, 8, spark_kmeans_cost_model(), registry);
    let out: Arc<Mutex<Option<KMeansReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg = cfg.clone();
    sim.spawn("spark-driver-app", move |ctx| {
        let partitions: Vec<Vec<u8>> = (0..cfg.workers)
            .map(|p| {
                let part = kmeans_partition(
                    cfg.seed,
                    p as usize,
                    cfg.sample_points,
                    cfg.dims,
                    cfg.k as usize,
                );
                crucial::codec::to_bytes(&part).expect("encode")
            })
            .collect();
        let t_total0 = ctx.now();
        spark.load_partitions(ctx, partitions);
        if cfg.include_load {
            let _ = spark.run_stage(ctx, "km_load", Vec::new());
        }
        let mut centroids = initial_centroids(cfg.seed, cfg.k, cfg.dims);
        let mut sse_series = Vec::new();
        let t_iter0 = ctx.now();
        for _ in 0..cfg.iterations {
            let bcast = crucial::codec::to_bytes(&flatten(&centroids)).expect("encode");
            spark.broadcast(ctx, bcast.clone());
            let results = spark.run_stage(ctx, "km_assign", Vec::new());
            // Reduce at the driver.
            let dims = cfg.dims;
            let mut sums = vec![vec![0.0; dims]; cfg.k as usize];
            let mut counts = vec![0u64; cfg.k as usize];
            for r in &results {
                let (s, c, _sse): (Vec<f64>, Vec<u64>, f64) =
                    crucial::codec::from_bytes(r).expect("decode");
                for (i, v) in s.iter().enumerate() {
                    sums[i / dims][i % dims] += v;
                }
                for (a, b) in counts.iter_mut().zip(&c) {
                    *a += b;
                }
            }
            for c in 0..cfg.k as usize {
                if counts[c] > 0 {
                    for j in 0..dims {
                        centroids[c][j] = sums[c][j] / counts[c] as f64;
                    }
                }
            }
            // Cost-evaluation pass (sse of the *new* centroids).
            let bcast = crucial::codec::to_bytes(&flatten(&centroids)).expect("encode");
            spark.broadcast(ctx, bcast);
            let costs = spark.run_stage(ctx, "km_cost", Vec::new());
            let sse: f64 =
                costs.iter().map(|r| crucial::codec::from_bytes::<f64>(r).expect("decode")).sum();
            sse_series.push(sse);
        }
        let iteration_phase = ctx.now() - t_iter0;
        let total = ctx.now() - t_total0;
        *out2.lock() = Some(KMeansReport {
            iteration_phase,
            total,
            sse_per_iteration: sse_series,
            cost_dollars: ClusterPricing::default().cost_for(total),
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("driver finished");
    report
}

// ---------------------------------------------------------------------------
// Redis-backed variant (Fig. 5's third series)
// ---------------------------------------------------------------------------

/// Cloud-thread body of the Redis-backed k-means: identical to
/// [`KMeansWorker`] except the centroid state lives in Redis and its
/// "object methods" are server-side scripts executed serially per shard.
#[derive(Clone, Serialize, Deserialize)]
pub struct KMeansRedisWorker {
    /// Worker index.
    pub worker_id: u32,
    /// Shared configuration.
    pub cfg: KMeansConfig,
    /// Handle to the Redis tier.
    pub redis: RedisHandle,
    /// Iteration barrier (kept on the DSO tier, as in the paper's hybrid).
    pub barrier: CyclicBarrier,
    /// Measured-phase instants, written by worker 0.
    pub t_start: AtomicLong,
    /// See `t_start`.
    pub t_end: AtomicLong,
}

/// Redis scripts implementing the centroid object's methods.
pub fn kmeans_redis_scripts() -> ScriptRegistry {
    let mut reg = ScriptRegistry::new();
    // Lua cost model: interpreting the update over k*d doubles.
    fn script_cost(bytes: usize) -> Duration {
        Duration::from_micros(5) + Duration::from_nanos(60) * bytes as u32
    }
    reg.register("km_init", |cur, args| {
        // Idempotent: only initialize when absent.
        let bytes = args.len();
        match cur {
            Some(v) => (Vec::new(), Some(v), script_cost(bytes)),
            None => (Vec::new(), Some(args.to_vec()), script_cost(bytes)),
        }
    });
    reg.register("km_read", |cur, _args| {
        let v = cur.clone().unwrap_or_default();
        let state: GlobalCentroids =
            crucial::codec::from_bytes(&v).expect("centroid state decodes");
        let reply = crucial::codec::to_bytes(&state.snapshot()).expect("encode");
        let cost = script_cost(reply.len());
        (reply, cur, cost)
    });
    reg.register("km_update", |cur, args| {
        let v = cur.unwrap_or_default();
        let mut state: GlobalCentroids =
            crucial::codec::from_bytes(&v).expect("centroid state decodes");
        let (sums, counts): (Vec<f64>, Vec<u64>) =
            crucial::codec::from_bytes(args).expect("update args decode");
        let generation = state.apply_update(&sums, &counts).expect("shapes match");
        let reply = crucial::codec::to_bytes(&generation).expect("encode");
        let cost = script_cost(args.len());
        (reply, Some(crucial::codec::to_bytes(&state).expect("encode")), cost)
    });
    reg
}

impl Runnable for KMeansRedisWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let scale = self.cfg.scale_for();
        if self.cfg.include_load {
            env.compute(partition_load_cost(&scale));
        }
        let part = kmeans_partition(
            self.cfg.seed,
            self.worker_id as usize,
            self.cfg.sample_points,
            self.cfg.dims,
            self.cfg.k as usize,
        );
        {
            let (ctx, dso) = env.dso();
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
        }
        if self.worker_id == 0 {
            let (ctx, dso) = env.dso();
            let now = ctx.now().as_nanos() as i64;
            self.t_start.set(ctx, dso, now).map_err(|e| e.to_string())?;
        }
        let assign_cost = kmeans_assign_cost(&scale, self.cfg.k);
        for _ in 0..self.cfg.iterations {
            let raw = {
                let redis = self.redis.clone();
                redis.eval(env.ctx(), "km_read", "centroids", Vec::new())
            };
            let (_generation, flat): (u64, Vec<f64>) =
                crucial::codec::from_bytes(&raw).map_err(|e| e.to_string())?;
            let current = unflatten(&flat, self.cfg.dims);
            let (sums, counts, _sse) = assign_partials(&part.points, &current);
            env.compute(assign_cost);
            {
                let args = crucial::codec::to_bytes(&(flatten(&sums), counts))
                    .map_err(|e| e.to_string())?;
                let redis = self.redis.clone();
                let _ = redis.eval(env.ctx(), "km_update", "centroids", args);
            }
            let (ctx, dso) = env.dso();
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
        }
        if self.worker_id == 0 {
            let (ctx, dso) = env.dso();
            let now = ctx.now().as_nanos() as i64;
            self.t_end.set(ctx, dso, now).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Runs the Redis-backed k-means (Fig. 5's "Crucial + Redis" series).
pub fn run_redis_kmeans(cfg: &KMeansConfig) -> KMeansReport {
    let mut sim = Sim::new(cfg.seed);
    let mut ccfg = CrucialConfig { dso_nodes: cfg.dso_nodes, ..CrucialConfig::default() };
    register_ml_objects(&mut ccfg.registry);
    let dep = Deployment::start(&sim, ccfg);
    // One r5.2xlarge Redis instance (the paper's storage swap).
    let redis = spawn_redis(&sim, 1, RedisConfig::default(), kmeans_redis_scripts());
    dep.register_with_memory::<KMeansRedisWorker>(cfg.memory_mb);
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let billing = dep.faas.billing().clone();
    let pricing = dep.faas.config().pricing;
    let out: Arc<Mutex<Option<KMeansReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg = cfg.clone();
    sim.spawn("kmeans-redis-master", move |ctx| {
        // Initialize the centroid state in Redis.
        let init_state = GlobalCentroids::new_init(CentroidsInit {
            k: cfg.k,
            dims: cfg.dims as u32,
            workers: cfg.workers,
            initial: flatten(&initial_centroids(cfg.seed, cfg.k, cfg.dims)),
        })
        .expect("valid init");
        let _ = redis.eval(
            ctx,
            "km_init",
            "centroids",
            crucial::codec::to_bytes(&init_state).expect("encode"),
        );
        let barrier = CyclicBarrier::new("iter-barrier", cfg.workers);
        let t_start = AtomicLong::new("t-start");
        let t_end = AtomicLong::new("t-end");
        let workers: Vec<KMeansRedisWorker> = (0..cfg.workers)
            .map(|worker_id| KMeansRedisWorker {
                worker_id,
                cfg: cfg.clone(),
                redis: redis.clone(),
                barrier: barrier.clone(),
                t_start: t_start.clone(),
                t_end: t_end.clone(),
            })
            .collect();
        let t_total0 = ctx.now();
        let handles = threads.start_all(ctx, &workers);
        join_all(ctx, handles).expect("redis k-means threads succeed");
        let total = ctx.now() - t_total0;
        let mut cli = dso.connect();
        let start_ns = t_start.get(ctx, &mut cli).expect("t_start written");
        let end_ns = t_end.get(ctx, &mut cli).expect("t_end written");
        *out2.lock() = Some(KMeansReport {
            iteration_phase: Duration::from_nanos((end_ns - start_ns).max(0) as u64),
            total,
            sse_per_iteration: Vec::new(),
            cost_dollars: billing.cost(pricing),
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("master finished");
    report
}

// ---------------------------------------------------------------------------
// Single-machine implementation (Fig. 3 baseline)
// ---------------------------------------------------------------------------

/// Runs k-means with plain threads on one VM with `cores` cores; input
/// grows with the thread count, exactly like Fig. 3.
pub fn run_local_kmeans(cfg: &KMeansConfig, cores: u32) -> KMeansReport {
    let mut sim = Sim::new(cfg.seed);
    let vm = LocalVm::new(&sim, "vm", cores);
    let out: Arc<Mutex<Option<KMeansReport>>> = Arc::new(Mutex::new(None));
    let shared: Arc<Mutex<LocalState>> = Arc::new(Mutex::new(LocalState {
        centroids: initial_centroids(cfg.seed, cfg.k, cfg.dims),
        acc_sums: vec![vec![0.0; cfg.dims]; cfg.k as usize],
        acc_counts: vec![0; cfg.k as usize],
        contributions: 0,
        sse: Vec::new(),
        sse_acc: 0.0,
    }));
    let barrier = crucial::sync::LocalBarrier::new(cfg.workers as usize);
    let done = crucial::sync::WaitGroup::new(cfg.workers as usize);
    let t_end = Arc::new(Mutex::new(SimTime::ZERO));
    for w in 0..cfg.workers {
        let vm = vm.clone();
        let shared = shared.clone();
        let barrier = barrier.clone();
        let done = done.clone();
        let cfg = cfg.clone();
        let t_end = t_end.clone();
        sim.spawn(&format!("local-{w}"), move |ctx| {
            let part =
                kmeans_partition(cfg.seed, w as usize, cfg.sample_points, cfg.dims, cfg.k as usize);
            let assign_cost = kmeans_assign_cost(&cfg.scale, cfg.k);
            for _ in 0..cfg.iterations {
                let current = shared.lock().centroids.clone();
                let (sums, counts, sse) = assign_partials(&part.points, &current);
                vm.compute(ctx, assign_cost);
                {
                    let mut st = shared.lock();
                    for (a, s) in st.acc_sums.iter_mut().zip(&sums) {
                        for (x, y) in a.iter_mut().zip(s) {
                            *x += y;
                        }
                    }
                    for (a, c) in st.acc_counts.iter_mut().zip(&counts) {
                        *a += c;
                    }
                    st.sse_acc += sse;
                    st.contributions += 1;
                    if st.contributions == cfg.workers {
                        let LocalState {
                            centroids,
                            acc_sums,
                            acc_counts,
                            contributions,
                            sse,
                            sse_acc,
                        } = &mut *st;
                        for (c, (s, n)) in
                            centroids.iter_mut().zip(acc_sums.iter().zip(acc_counts.iter()))
                        {
                            if *n > 0 {
                                for (cv, sv) in c.iter_mut().zip(s) {
                                    *cv = sv / *n as f64;
                                }
                            }
                        }
                        sse.push(*sse_acc);
                        *sse_acc = 0.0;
                        *contributions = 0;
                        acc_sums.iter_mut().for_each(|r| r.iter_mut().for_each(|x| *x = 0.0));
                        acc_counts.iter_mut().for_each(|x| *x = 0);
                    }
                }
                barrier.wait(ctx);
            }
            {
                let mut e = t_end.lock();
                if ctx.now() > *e {
                    *e = ctx.now();
                }
            }
            done.done(ctx);
        });
    }
    let out2 = out.clone();
    let shared2 = shared.clone();
    let t_end2 = t_end.clone();
    sim.spawn("local-master", move |ctx| {
        done.wait(ctx);
        let end = *t_end2.lock();
        let report = KMeansReport {
            iteration_phase: end.saturating_duration_since(SimTime::ZERO),
            total: end.saturating_duration_since(SimTime::ZERO),
            sse_per_iteration: shared2.lock().sse.clone(),
            cost_dollars: 0.0,
        };
        *out2.lock() = Some(report);
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("master finished");
    report
}

struct LocalState {
    centroids: Vec<Vec<f64>>,
    acc_sums: Vec<Vec<f64>>,
    acc_counts: Vec<u64>,
    contributions: u32,
    sse: Vec<f64>,
    sse_acc: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> KMeansConfig {
        KMeansConfig {
            seed: 5,
            workers: 4,
            k: 3,
            iterations: 3,
            sample_points: 60,
            dims: 8,
            scale: DatasetScale { total_points: 400_000, dims: 8, partitions: 4 },
            include_load: false,
            dso_nodes: 1,
            memory_mb: 2048,
        }
    }

    #[test]
    fn assign_partials_matches_hand_example() {
        let points = vec![vec![0.0, 0.0], vec![0.2, 0.0], vec![10.0, 10.0]];
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        let (sums, counts, sse) = assign_partials(&points, &centroids);
        assert_eq!(counts, vec![2, 1]);
        assert!((sums[0][0] - 0.2).abs() < 1e-12);
        assert_eq!(sums[1], vec![10.0, 10.0]);
        assert!((sse - 0.04).abs() < 1e-12);
    }

    #[test]
    fn sse_decreases_monotonically_on_crucial() {
        let report = run_crucial_kmeans(&tiny_cfg());
        assert_eq!(report.sse_per_iteration.len(), 3);
        for w in report.sse_per_iteration.windows(2) {
            assert!(
                w[1] <= w[0] * 1.0001,
                "k-means SSE must not increase: {:?}",
                report.sse_per_iteration
            );
        }
        assert!(report.cost_dollars > 0.0);
        assert!(report.iteration_phase > Duration::ZERO);
        assert!(report.total >= report.iteration_phase);
    }

    #[test]
    fn spark_and_crucial_converge_to_similar_sse() {
        let crucial = run_crucial_kmeans(&tiny_cfg());
        let spark = run_spark_kmeans(&tiny_cfg());
        let a = *crucial.sse_per_iteration.last().expect("iterations ran");
        let b = *spark.sse_per_iteration.last().expect("iterations ran");
        // Same data, same algorithm, same initial centroids: the final SSE
        // must agree closely (spark's series is evaluated post-update, so
        // allow slack of one iteration of improvement).
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.25, "crucial SSE {a} vs spark SSE {b}");
    }

    #[test]
    fn crucial_iterations_are_faster_than_spark() {
        let crucial = run_crucial_kmeans(&tiny_cfg());
        let spark = run_spark_kmeans(&tiny_cfg());
        assert!(
            crucial.iteration_phase < spark.iteration_phase,
            "crucial {:?} must beat spark {:?} (Fig. 5)",
            crucial.iteration_phase,
            spark.iteration_phase
        );
    }

    #[test]
    fn redis_variant_runs_and_is_slower_than_crucial() {
        // Paper-sized shared state (k=25, d=100 => 20 KB payloads): the
        // single-threaded Redis shard serializes the scripts while the DSO
        // worker pool absorbs them.
        let cfg = KMeansConfig {
            seed: 5,
            workers: 8,
            k: 25,
            iterations: 3,
            sample_points: 40,
            dims: 100,
            scale: DatasetScale { total_points: 80_000, dims: 100, partitions: 8 },
            include_load: false,
            dso_nodes: 1,
            memory_mb: 2048,
        };
        let crucial = run_crucial_kmeans(&cfg);
        let redis = run_redis_kmeans(&cfg);
        assert!(
            redis.iteration_phase > crucial.iteration_phase,
            "redis-backed {:?} must be slower than crucial {:?} (Fig. 5)",
            redis.iteration_phase,
            crucial.iteration_phase
        );
    }

    #[test]
    fn local_vm_runs_and_converges() {
        let report = run_local_kmeans(&tiny_cfg(), 8);
        assert_eq!(report.sse_per_iteration.len(), 3);
        for w in report.sse_per_iteration.windows(2) {
            assert!(w[1] <= w[0] * 1.0001);
        }
    }

    #[test]
    fn local_vm_slows_down_past_core_count() {
        let mut cfg = tiny_cfg();
        cfg.workers = 4;
        let t4 = run_local_kmeans(&cfg, 2).iteration_phase;
        cfg.workers = 2;
        let t2 = run_local_kmeans(&cfg, 2).iteration_phase;
        // Same per-worker input, twice the threads on 2 cores: ~2x slower.
        let ratio = t4.as_secs_f64() / t2.as_secs_f64();
        assert!(ratio > 1.6, "4 threads on 2 cores should be ~2x slower: {ratio}");
    }
}
