//! # crucial-ml — the paper's machine-learning workloads
//!
//! Everything §6.2 and §6.4 run: deterministic spark-perf-style data
//! generation ([`datagen`]), the calibrated compute-cost model mapping the
//! 100 GB / 55.6 M-point workload onto virtual time ([`cost`]), the custom
//! `@Shared` aggregation objects ([`objects`]), and complete k-means
//! ([`kmeans`]) and logistic-regression ([`logreg`]) implementations on
//! four substrates:
//!
//! * **Crucial** — cloud threads + DSO objects (Listing 2),
//! * **mini-Spark** — the MLlib-style BSP baseline (Figs. 4–5),
//! * **Redis-backed** — Crucial with its mutable state swapped to
//!   single-threaded Redis scripts (Fig. 5's third series),
//! * **single VM** — plain threads with core contention (Fig. 3).
//!
//! [`inference`] adds the Fig. 8 serving experiment over a replicated
//! model with node crash and arrival.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod datagen;
pub mod elastic;
pub mod inference;
pub mod kmeans;
pub mod logreg;
pub mod objects;
