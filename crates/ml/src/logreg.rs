//! Logistic regression with gradient descent (§6.2.2, Fig. 4): the Crucial
//! implementation against the MLlib-style `LogisticRegressionWithSGD`
//! baseline on mini-Spark.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crucial::{
    join_all, AtomicLong, CrucialConfig, CyclicBarrier, Deployment, FnEnv, RunResult, Runnable, Sim,
};
use sparklite::{spawn_cluster, ClusterPricing, SparkCostModel, TaskRegistry};

use crate::cost::{logreg_grad_cost, partition_load_cost, DatasetScale};
use crate::datagen::logreg_partition;
use crate::objects::{register_ml_objects, WeightsHandle, WeightsInit};

// ---------------------------------------------------------------------------
// Core math
// ---------------------------------------------------------------------------

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// One gradient pass over labelled points: `(gradient, logistic loss)`.
pub fn gradient_and_loss(points: &[Vec<f64>], labels: &[f64], w: &[f64]) -> (Vec<f64>, f64) {
    let mut grad = vec![0.0; w.len()];
    let mut loss = 0.0;
    for (x, &y) in points.iter().zip(labels) {
        let z: f64 = x.iter().zip(w).map(|(a, b)| a * b).sum();
        let p = sigmoid(z);
        let err = p - y;
        for (g, xi) in grad.iter_mut().zip(x) {
            *g += err * xi;
        }
        // Clamped log-loss for numerical safety.
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        loss -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
    }
    let n = points.len().max(1) as f64;
    grad.iter_mut().for_each(|g| *g /= n);
    (grad, loss / n)
}

// ---------------------------------------------------------------------------
// Configuration and report
// ---------------------------------------------------------------------------

/// Parameters shared by both logistic-regression implementations.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogRegConfig {
    /// Simulation / data seed.
    pub seed: u64,
    /// Concurrent workers / partitions. Paper: 80.
    pub workers: u32,
    /// Gradient-descent iterations. Paper: 100 (Fig. 4).
    pub iterations: u32,
    /// Real points per worker for the math.
    pub sample_points: usize,
    /// Dimensions (paper: 100).
    pub dims: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// Paper-scale dataset for the cost model.
    pub scale: DatasetScale,
    /// Whether to model loading the input.
    pub include_load: bool,
    /// DSO storage nodes.
    pub dso_nodes: u32,
    /// Lambda memory (paper: 1792 MB for logistic regression).
    pub memory_mb: u32,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            seed: 1,
            workers: 80,
            iterations: 100,
            sample_points: 250,
            dims: 100,
            learning_rate: 2.0,
            scale: DatasetScale::default(),
            include_load: true,
            dso_nodes: 1,
            memory_mb: 1792,
        }
    }
}

impl LogRegConfig {
    fn scale_for(&self) -> DatasetScale {
        DatasetScale { partitions: self.workers, ..self.scale }
    }
}

/// Outcome of one logistic-regression run.
#[derive(Clone, Debug)]
pub struct LogRegReport {
    /// Duration of the iteration phase (Fig. 4a).
    pub iteration_phase: Duration,
    /// End-to-end time including loading.
    pub total: Duration,
    /// Logistic loss after each iteration (Fig. 4b).
    pub loss_per_iteration: Vec<f64>,
    /// Dollar cost.
    pub cost_dollars: f64,
}

// ---------------------------------------------------------------------------
// Crucial implementation
// ---------------------------------------------------------------------------

/// Cloud-thread body: fetch weights, compute the local sub-gradient,
/// push it to the `GlobalWeights` object, synchronize (§6.2.2).
#[derive(Clone, Serialize, Deserialize)]
pub struct LogRegWorker {
    /// Worker index.
    pub worker_id: u32,
    /// Shared configuration.
    pub cfg: LogRegConfig,
    /// The shared weight coefficients.
    pub weights: WeightsHandle,
    /// Iteration barrier.
    pub barrier: CyclicBarrier,
    /// Measured-phase instants (nanos), written by worker 0.
    pub t_start: AtomicLong,
    /// See `t_start`.
    pub t_end: AtomicLong,
}

impl Runnable for LogRegWorker {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let scale = self.cfg.scale_for();
        if self.cfg.include_load {
            env.compute(partition_load_cost(&scale));
        }
        let part = logreg_partition(
            self.cfg.seed,
            self.worker_id as usize,
            self.cfg.sample_points,
            self.cfg.dims,
        );
        {
            let (ctx, dso) = env.dso();
            self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
            if self.worker_id == 0 {
                let now = ctx.now().as_nanos() as i64;
                self.t_start.set(ctx, dso, now).map_err(|e| e.to_string())?;
            }
        }
        let grad_cost = logreg_grad_cost(&scale);
        for _ in 0..self.cfg.iterations {
            let (_generation, w) = {
                let (ctx, dso) = env.dso();
                self.weights.read(ctx, dso).map_err(|e| e.to_string())?
            };
            let (grad, loss) = gradient_and_loss(&part.points, &part.labels, &w);
            env.compute(grad_cost);
            {
                let (ctx, dso) = env.dso();
                self.weights.update(ctx, dso, &grad, loss).map_err(|e| e.to_string())?;
                self.barrier.wait(ctx, dso).map_err(|e| e.to_string())?;
            }
        }
        if self.worker_id == 0 {
            let (ctx, dso) = env.dso();
            let now = ctx.now().as_nanos() as i64;
            self.t_end.set(ctx, dso, now).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Runs logistic regression on Crucial.
pub fn run_crucial_logreg(cfg: &LogRegConfig) -> LogRegReport {
    let mut sim = Sim::new(cfg.seed);
    let mut ccfg = CrucialConfig { dso_nodes: cfg.dso_nodes, ..CrucialConfig::default() };
    register_ml_objects(&mut ccfg.registry);
    let dep = Deployment::start(&sim, ccfg);
    dep.register_with_memory::<LogRegWorker>(cfg.memory_mb);
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let billing = dep.faas.billing().clone();
    let pricing = dep.faas.config().pricing;
    let out: Arc<Mutex<Option<LogRegReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg = cfg.clone();
    sim.spawn("logreg-master", move |ctx| {
        let weights = WeightsHandle::new(
            "weights",
            WeightsInit {
                dims: cfg.dims as u32,
                workers: cfg.workers,
                learning_rate: cfg.learning_rate,
            },
        );
        let barrier = CyclicBarrier::new("iter-barrier", cfg.workers);
        let t_start = AtomicLong::new("t-start");
        let t_end = AtomicLong::new("t-end");
        let workers: Vec<LogRegWorker> = (0..cfg.workers)
            .map(|worker_id| LogRegWorker {
                worker_id,
                cfg: cfg.clone(),
                weights: weights.clone(),
                barrier: barrier.clone(),
                t_start: t_start.clone(),
                t_end: t_end.clone(),
            })
            .collect();
        let t_total0 = ctx.now();
        let handles = threads.start_all(ctx, &workers);
        join_all(ctx, handles).expect("logreg cloud threads succeed");
        let total = ctx.now() - t_total0;
        let mut cli = dso.connect();
        let start_ns = t_start.get(ctx, &mut cli).expect("t_start written");
        let end_ns = t_end.get(ctx, &mut cli).expect("t_end written");
        let losses = weights.losses(ctx, &mut cli).expect("loss history");
        *out2.lock() = Some(LogRegReport {
            iteration_phase: Duration::from_nanos((end_ns - start_ns).max(0) as u64),
            total,
            loss_per_iteration: losses,
            cost_dollars: billing.cost(pricing),
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("master finished");
    report
}

// ---------------------------------------------------------------------------
// Spark implementation
// ---------------------------------------------------------------------------

/// Cost model for `LogisticRegressionWithSGD` on EMR: one treeAggregate
/// stage per iteration with modest scheduling overhead (see
/// EXPERIMENTS.md).
pub fn spark_logreg_cost_model() -> SparkCostModel {
    SparkCostModel {
        stage_overhead: Duration::from_millis(60),
        per_task_dispatch: Duration::from_micros(700),
        ..SparkCostModel::default()
    }
}

/// Runs the MLlib-style logistic regression baseline on mini-Spark.
pub fn run_spark_logreg(cfg: &LogRegConfig) -> LogRegReport {
    let mut sim = Sim::new(cfg.seed);
    let scale = cfg.scale_for();
    let registry = TaskRegistry::new();
    {
        registry.register("lr_load", move |_p, _b, _a| (Vec::new(), partition_load_cost(&scale)));
        registry.register("lr_grad", move |part, bcast, _args| {
            let data: crate::datagen::LabeledPartition =
                crucial::codec::from_bytes(part).expect("partition decodes");
            let w: Vec<f64> = crucial::codec::from_bytes(bcast).expect("broadcast decodes");
            let (grad, loss) = gradient_and_loss(&data.points, &data.labels, &w);
            (crucial::codec::to_bytes(&(grad, loss)).expect("encode"), logreg_grad_cost(&scale))
        });
    }
    let spark = spawn_cluster(&sim, 10, 8, spark_logreg_cost_model(), registry);
    let out: Arc<Mutex<Option<LogRegReport>>> = Arc::new(Mutex::new(None));
    let out2 = out.clone();
    let cfg = cfg.clone();
    sim.spawn("spark-logreg-app", move |ctx| {
        let partitions: Vec<Vec<u8>> = (0..cfg.workers)
            .map(|p| {
                let part = logreg_partition(cfg.seed, p as usize, cfg.sample_points, cfg.dims);
                crucial::codec::to_bytes(&part).expect("encode")
            })
            .collect();
        let t_total0 = ctx.now();
        spark.load_partitions(ctx, partitions);
        if cfg.include_load {
            let _ = spark.run_stage(ctx, "lr_load", Vec::new());
        }
        let mut w = vec![0.0f64; cfg.dims];
        let mut losses = Vec::new();
        let t_iter0 = ctx.now();
        for _ in 0..cfg.iterations {
            // Broadcast the weights, aggregate the sub-gradients.
            let bcast = crucial::codec::to_bytes(&w).expect("encode");
            spark.broadcast(ctx, bcast);
            let results = spark.run_stage(ctx, "lr_grad", Vec::new());
            let mut grad = vec![0.0; cfg.dims];
            let mut loss = 0.0;
            for r in &results {
                let (g, l): (Vec<f64>, f64) = crucial::codec::from_bytes(r).expect("decode");
                for (a, b) in grad.iter_mut().zip(&g) {
                    *a += b;
                }
                loss += l;
            }
            let n = cfg.workers as f64;
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= cfg.learning_rate / n * g;
            }
            losses.push(loss / n);
        }
        let iteration_phase = ctx.now() - t_iter0;
        let total = ctx.now() - t_total0;
        *out2.lock() = Some(LogRegReport {
            iteration_phase,
            total,
            loss_per_iteration: losses,
            cost_dollars: ClusterPricing::default().cost_for(total),
        });
    });
    sim.run_until_idle().expect_quiescent();
    let report = out.lock().take().expect("driver finished");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> LogRegConfig {
        LogRegConfig {
            seed: 3,
            workers: 4,
            iterations: 8,
            sample_points: 100,
            dims: 10,
            learning_rate: 1.0,
            scale: DatasetScale { total_points: 200_000, dims: 10, partitions: 4 },
            include_load: false,
            dso_nodes: 1,
            memory_mb: 1792,
        }
    }

    #[test]
    fn gradient_points_downhill() {
        let part = crate::datagen::logreg_partition(1, 0, 400, 6);
        let w0 = vec![0.0; 6];
        let (grad, loss0) = gradient_and_loss(&part.points, &part.labels, &w0);
        let w1: Vec<f64> = w0.iter().zip(&grad).map(|(w, g)| w - 0.5 * g).collect();
        let (_, loss1) = gradient_and_loss(&part.points, &part.labels, &w1);
        assert!(loss1 < loss0, "one step must reduce loss: {loss0} -> {loss1}");
    }

    #[test]
    fn crucial_loss_decreases_over_iterations() {
        let report = run_crucial_logreg(&tiny_cfg());
        let losses = &report.loss_per_iteration;
        assert_eq!(losses.len(), 8);
        assert!(
            losses.last().expect("nonempty") < losses.first().expect("nonempty"),
            "loss must decrease: {losses:?}"
        );
    }

    #[test]
    fn crucial_and_spark_learn_the_same_model() {
        let a = run_crucial_logreg(&tiny_cfg());
        let b = run_spark_logreg(&tiny_cfg());
        // Same data, same updates: the loss series must match numerically.
        assert_eq!(a.loss_per_iteration.len(), b.loss_per_iteration.len());
        for (x, y) in a.loss_per_iteration.iter().zip(&b.loss_per_iteration) {
            assert!((x - y).abs() < 1e-9, "loss series diverged: {x} vs {y}");
        }
    }

    #[test]
    fn crucial_iterations_beat_spark() {
        let a = run_crucial_logreg(&tiny_cfg());
        let b = run_spark_logreg(&tiny_cfg());
        assert!(
            a.iteration_phase < b.iteration_phase,
            "crucial {:?} must beat spark {:?} (Fig. 4a)",
            a.iteration_phase,
            b.iteration_phase
        );
    }
}
