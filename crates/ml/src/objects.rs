//! The custom `@Shared` objects of the ML applications (Listing 2):
//! `GlobalCentroids`, `GlobalDelta` and (for logistic regression)
//! `GlobalWeights`. Their methods run *on the DSO servers* — the
//! method-call-shipping aggregation that replaces Spark's reduce phase
//! (§4.2, §6.2.2).

use std::collections::BTreeMap;
use std::time::Duration;

use crucial::{
    costs, CallCtx, Ctx, DsoClient, DsoError, Effects, ObjectError, ObjectRegistry, RawHandle,
    SharedObject,
};
use serde::{Deserialize, Serialize};

fn dec<T: serde::de::DeserializeOwned>(args: &[u8]) -> Result<T, ObjectError> {
    crucial::codec::from_bytes(args).map_err(|e| ObjectError::BadArgs(e.to_string()))
}

fn bulk_cost(bytes: usize) -> Duration {
    costs::SIMPLE_OP + costs::PER_BYTE * bytes as u32
}

/// Registers the ML object types; call before starting the DSO cluster
/// (the analogue of uploading the application jar, §5).
pub fn register_ml_objects(reg: &mut ObjectRegistry) {
    reg.register(GlobalCentroids::TYPE, GlobalCentroids::factory);
    reg.register(GlobalDelta::TYPE, GlobalDelta::factory);
    reg.register(GlobalWeights::TYPE, GlobalWeights::factory);
}

// ---------------------------------------------------------------------------
// GlobalCentroids
// ---------------------------------------------------------------------------

/// Server-side centroid aggregator: workers push partial sums/counts; the
/// last contribution of a round folds them into the next generation of
/// centroids.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct GlobalCentroids {
    k: u32,
    dims: u32,
    workers: u32,
    generation: u64,
    /// Current centroids, flattened row-major (k × dims).
    current: Vec<f64>,
    acc_sums: Vec<f64>,
    acc_counts: Vec<u64>,
    contributions: u32,
}

/// Creation arguments for [`GlobalCentroids`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CentroidsInit {
    /// Number of clusters.
    pub k: u32,
    /// Dimensions.
    pub dims: u32,
    /// Contributions per round (number of cloud threads).
    pub workers: u32,
    /// Initial centroids, flattened (k × dims).
    pub initial: Vec<f64>,
}

impl GlobalCentroids {
    /// Registry type name.
    pub const TYPE: &'static str = "GlobalCentroids";

    /// Builds the state machine from its creation arguments. Shared by the
    /// DSO factory and the Redis-script variant (Fig. 5), so both backends
    /// run the same aggregation logic.
    ///
    /// # Errors
    ///
    /// Fails when the initial centroids do not match `k × dims`.
    pub fn new_init(init: CentroidsInit) -> Result<GlobalCentroids, ObjectError> {
        if init.initial.len() != (init.k * init.dims) as usize {
            return Err(ObjectError::BadState(format!(
                "initial centroids: expected {} values, got {}",
                init.k * init.dims,
                init.initial.len()
            )));
        }
        Ok(GlobalCentroids {
            k: init.k,
            dims: init.dims,
            workers: init.workers.max(1),
            generation: 0,
            acc_sums: vec![0.0; init.initial.len()],
            acc_counts: vec![0; init.k as usize],
            current: init.initial,
            contributions: 0,
        })
    }

    /// Factory from [`CentroidsInit`] creation args.
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjectError> {
        if args.is_empty() {
            return Ok(Box::<GlobalCentroids>::default());
        }
        let init: CentroidsInit =
            crucial::codec::from_bytes(args).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(Box::new(GlobalCentroids::new_init(init)?))
    }

    /// `(generation, flattened centroids)` — the payload of `read`.
    pub fn snapshot(&self) -> (u64, Vec<f64>) {
        (self.generation, self.current.clone())
    }

    /// Accumulates one worker's partials; the last contribution of a round
    /// folds them into the next generation. Returns the generation after
    /// the update.
    ///
    /// # Errors
    ///
    /// Fails on shape mismatch.
    pub fn apply_update(&mut self, sums: &[f64], counts: &[u64]) -> Result<u64, ObjectError> {
        if sums.len() != self.acc_sums.len() || counts.len() != self.acc_counts.len() {
            return Err(ObjectError::BadArgs(format!(
                "update shape mismatch: {}x{} expected",
                self.k, self.dims
            )));
        }
        for (a, s) in self.acc_sums.iter_mut().zip(sums) {
            *a += s;
        }
        for (a, c) in self.acc_counts.iter_mut().zip(counts) {
            *a += c;
        }
        self.contributions += 1;
        if self.contributions == self.workers {
            let d = self.dims as usize;
            for c in 0..self.k as usize {
                if self.acc_counts[c] > 0 {
                    let n = self.acc_counts[c] as f64;
                    for j in 0..d {
                        self.current[c * d + j] = self.acc_sums[c * d + j] / n;
                    }
                }
            }
            self.acc_sums.iter_mut().for_each(|x| *x = 0.0);
            self.acc_counts.iter_mut().for_each(|x| *x = 0);
            self.contributions = 0;
            self.generation += 1;
        }
        Ok(self.generation)
    }
}

impl SharedObject for GlobalCentroids {
    fn invoke(
        &mut self,
        _call: &CallCtx,
        method: &str,
        args: &[u8],
    ) -> Result<Effects, ObjectError> {
        match method {
            // -> (generation, flattened centroids)
            "read" => {
                let reply = self.snapshot();
                Effects::value_with_cost(&reply, bulk_cost(self.current.len() * 8))
            }
            // (sums, counts): accumulate one worker's partials.
            "update" => {
                let (sums, counts): (Vec<f64>, Vec<u64>) = dec(args)?;
                let payload = sums.len() * 8 + counts.len() * 8;
                let generation = self.apply_update(&sums, &counts)?;
                Effects::value_with_cost(&generation, bulk_cost(payload))
            }
            other => Err(ObjectError::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "read")
    }

    fn save(&self) -> Vec<u8> {
        crucial::codec::to_bytes(self).expect("centroids encode")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError> {
        *self =
            crucial::codec::from_bytes(state).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(())
    }
}

/// Typed client handle for [`GlobalCentroids`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CentroidsHandle {
    raw: RawHandle,
    k: u32,
    dims: u32,
}

impl CentroidsHandle {
    /// Handle to an ephemeral centroid aggregator.
    pub fn new(key: &str, init: CentroidsInit) -> CentroidsHandle {
        Self::with_rf(key, init, 1)
    }

    /// Handle to a replicated (persistent) aggregator — used by the Fig. 8
    /// serving experiment where the trained model must survive failures.
    pub fn persistent(key: &str, init: CentroidsInit, rf: u8) -> CentroidsHandle {
        Self::with_rf(key, init, rf)
    }

    fn with_rf(key: &str, init: CentroidsInit, rf: u8) -> CentroidsHandle {
        let (k, dims) = (init.k, init.dims);
        CentroidsHandle { raw: RawHandle::new(GlobalCentroids::TYPE, key, rf, &init), k, dims }
    }

    /// Reads `(generation, centroids)` (un-flattened).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn read(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
    ) -> Result<(u64, Vec<Vec<f64>>), DsoError> {
        let (generation, flat): (u64, Vec<f64>) = self.raw.call_read(ctx, cli, "read", &())?;
        let d = self.dims as usize;
        let centroids = flat.chunks(d).map(<[f64]>::to_vec).collect();
        Ok((generation, centroids))
    }

    /// Pushes one worker's partial sums and counts; returns the generation
    /// after this update.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn update(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        sums: &[Vec<f64>],
        counts: &[u64],
    ) -> Result<u64, DsoError> {
        let flat: Vec<f64> = sums.iter().flatten().copied().collect();
        self.raw.call(ctx, cli, "update", &(flat, counts.to_vec()))
    }

    /// Number of clusters.
    pub fn k(&self) -> u32 {
        self.k
    }
}

// ---------------------------------------------------------------------------
// GlobalDelta
// ---------------------------------------------------------------------------

/// Per-generation sum accumulator: the convergence criterion of Listing 2.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct GlobalDelta {
    sums: BTreeMap<u64, (f64, u32)>,
}

impl GlobalDelta {
    /// Registry type name.
    pub const TYPE: &'static str = "GlobalDelta";

    /// Factory (no creation arguments).
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjectError> {
        if !args.is_empty() {
            let _: () = crucial::codec::from_bytes(args)
                .map_err(|e| ObjectError::BadState(e.to_string()))?;
        }
        Ok(Box::<GlobalDelta>::default())
    }
}

impl SharedObject for GlobalDelta {
    fn invoke(
        &mut self,
        _call: &CallCtx,
        method: &str,
        args: &[u8],
    ) -> Result<Effects, ObjectError> {
        match method {
            "add" => {
                let (generation, v): (u64, f64) = dec(args)?;
                let e = self.sums.entry(generation).or_insert((0.0, 0));
                e.0 += v;
                e.1 += 1;
                Effects::value(&e.0)
            }
            // -> (sum, contributions) for a generation
            "get" => {
                let generation: u64 = dec(args)?;
                let e = self.sums.get(&generation).copied().unwrap_or((0.0, 0));
                Effects::value(&e)
            }
            "history" => {
                let hist: Vec<(u64, f64, u32)> =
                    self.sums.iter().map(|(g, (s, n))| (*g, *s, *n)).collect();
                Effects::value_with_cost(&hist, bulk_cost(hist.len() * 20))
            }
            other => Err(ObjectError::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get" | "history")
    }

    fn save(&self) -> Vec<u8> {
        crucial::codec::to_bytes(self).expect("delta encodes")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError> {
        *self =
            crucial::codec::from_bytes(state).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(())
    }
}

/// Typed client handle for [`GlobalDelta`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaHandle {
    raw: RawHandle,
}

impl DeltaHandle {
    /// Handle to an ephemeral delta accumulator.
    pub fn new(key: &str) -> DeltaHandle {
        DeltaHandle { raw: RawHandle::new(GlobalDelta::TYPE, key, 1, &()) }
    }

    /// Adds a worker's contribution for a generation; returns the running
    /// sum.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn add(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        generation: u64,
        v: f64,
    ) -> Result<f64, DsoError> {
        self.raw.call(ctx, cli, "add", &(generation, v))
    }

    /// Reads `(sum, contributions)` for a generation.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn get(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        generation: u64,
    ) -> Result<(f64, u32), DsoError> {
        self.raw.call_read(ctx, cli, "get", &generation)
    }

    /// Full per-generation history `(generation, sum, contributions)`.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn history(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
    ) -> Result<Vec<(u64, f64, u32)>, DsoError> {
        self.raw.call_read(ctx, cli, "history", &())
    }
}

// ---------------------------------------------------------------------------
// GlobalWeights (logistic regression)
// ---------------------------------------------------------------------------

/// Server-side weight vector for logistic regression: workers push
/// gradients and losses; the last contribution applies the averaged
/// gradient step and records the loss (Fig. 4b's series).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct GlobalWeights {
    dims: u32,
    workers: u32,
    learning_rate: f64,
    generation: u64,
    weights: Vec<f64>,
    acc_grad: Vec<f64>,
    acc_loss: f64,
    contributions: u32,
    losses: Vec<f64>,
}

/// Creation arguments for [`GlobalWeights`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightsInit {
    /// Dimensions.
    pub dims: u32,
    /// Contributions per round.
    pub workers: u32,
    /// SGD step size.
    pub learning_rate: f64,
}

impl GlobalWeights {
    /// Registry type name.
    pub const TYPE: &'static str = "GlobalWeights";

    /// Factory from [`WeightsInit`].
    pub fn factory(args: &[u8]) -> Result<Box<dyn SharedObject>, ObjectError> {
        if args.is_empty() {
            return Ok(Box::<GlobalWeights>::default());
        }
        let init: WeightsInit =
            crucial::codec::from_bytes(args).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(Box::new(GlobalWeights {
            dims: init.dims,
            workers: init.workers.max(1),
            learning_rate: init.learning_rate,
            generation: 0,
            weights: vec![0.0; init.dims as usize],
            acc_grad: vec![0.0; init.dims as usize],
            acc_loss: 0.0,
            contributions: 0,
            losses: Vec::new(),
        }))
    }
}

impl SharedObject for GlobalWeights {
    fn invoke(
        &mut self,
        _call: &CallCtx,
        method: &str,
        args: &[u8],
    ) -> Result<Effects, ObjectError> {
        match method {
            "read" => {
                let reply = (self.generation, self.weights.clone());
                Effects::value_with_cost(&reply, bulk_cost(self.weights.len() * 8))
            }
            // (gradient, loss): push one worker's contribution.
            "update" => {
                let (grad, loss): (Vec<f64>, f64) = dec(args)?;
                if grad.len() != self.acc_grad.len() {
                    return Err(ObjectError::BadArgs("gradient shape mismatch".to_string()));
                }
                for (a, g) in self.acc_grad.iter_mut().zip(&grad) {
                    *a += g;
                }
                self.acc_loss += loss;
                self.contributions += 1;
                if self.contributions == self.workers {
                    let scale = self.learning_rate / self.workers as f64;
                    for (w, g) in self.weights.iter_mut().zip(&self.acc_grad) {
                        *w -= scale * g;
                    }
                    self.losses.push(self.acc_loss / self.workers as f64);
                    self.acc_grad.iter_mut().for_each(|x| *x = 0.0);
                    self.acc_loss = 0.0;
                    self.contributions = 0;
                    self.generation += 1;
                }
                Effects::value_with_cost(&self.generation, bulk_cost(grad.len() * 8))
            }
            "losses" => Effects::value_with_cost(&self.losses, bulk_cost(self.losses.len() * 8)),
            other => Err(ObjectError::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "read" | "losses")
    }

    fn save(&self) -> Vec<u8> {
        crucial::codec::to_bytes(self).expect("weights encode")
    }

    fn restore(&mut self, state: &[u8]) -> Result<(), ObjectError> {
        *self =
            crucial::codec::from_bytes(state).map_err(|e| ObjectError::BadState(e.to_string()))?;
        Ok(())
    }
}

/// Typed client handle for [`GlobalWeights`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightsHandle {
    raw: RawHandle,
}

impl WeightsHandle {
    /// Handle to an ephemeral weight vector.
    pub fn new(key: &str, init: WeightsInit) -> WeightsHandle {
        WeightsHandle { raw: RawHandle::new(GlobalWeights::TYPE, key, 1, &init) }
    }

    /// Reads `(generation, weights)`.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn read(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<(u64, Vec<f64>), DsoError> {
        self.raw.call_read(ctx, cli, "read", &())
    }

    /// Pushes a gradient and loss; returns the generation after the update.
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn update(
        &self,
        ctx: &mut Ctx,
        cli: &mut DsoClient,
        grad: &[f64],
        loss: f64,
    ) -> Result<u64, DsoError> {
        self.raw.call(ctx, cli, "update", &(grad.to_vec(), loss))
    }

    /// The per-iteration loss series (Fig. 4b).
    ///
    /// # Errors
    ///
    /// Propagates [`DsoError`].
    pub fn losses(&self, ctx: &mut Ctx, cli: &mut DsoClient) -> Result<Vec<f64>, DsoError> {
        self.raw.call_read(ctx, cli, "losses", &())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crucial::Ticket;

    fn call<R: serde::de::DeserializeOwned>(
        obj: &mut dyn SharedObject,
        method: &str,
        args: &impl Serialize,
    ) -> R {
        let cc = CallCtx { ticket: Ticket(0), replicated: false, node: 0 };
        let bytes = crucial::codec::to_bytes(args).expect("encode");
        match obj.invoke(&cc, method, &bytes).expect("invoke").reply {
            crucial::Reply::Value(v) => crucial::codec::from_bytes(&v).expect("decode"),
            crucial::Reply::Park => panic!("unexpected park"),
        }
    }

    fn centroids(k: u32, dims: u32, workers: u32) -> Box<dyn SharedObject> {
        let init = CentroidsInit { k, dims, workers, initial: vec![0.0; (k * dims) as usize] };
        GlobalCentroids::factory(&crucial::codec::to_bytes(&init).expect("encode"))
            .expect("factory")
    }

    #[test]
    fn centroids_fold_after_all_workers() {
        let mut o = centroids(2, 2, 2);
        // Worker A: cluster 0 gets (2,2) from 1 point.
        let g: u64 = call(o.as_mut(), "update", &(vec![2.0, 2.0, 0.0, 0.0], vec![1u64, 0u64]));
        assert_eq!(g, 0, "not folded yet");
        // Worker B: cluster 0 gets (4,4) from 1 point; cluster 1 (6,0)/2.
        let g: u64 = call(o.as_mut(), "update", &(vec![4.0, 4.0, 6.0, 0.0], vec![1u64, 2u64]));
        assert_eq!(g, 1, "folded after the last contribution");
        let (generation, flat): (u64, Vec<f64>) = call(o.as_mut(), "read", &());
        assert_eq!(generation, 1);
        assert_eq!(flat, vec![3.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn centroids_keep_old_position_for_empty_clusters() {
        let init = CentroidsInit { k: 2, dims: 1, workers: 1, initial: vec![5.0, 9.0] };
        let mut o = GlobalCentroids::factory(&crucial::codec::to_bytes(&init).expect("encode"))
            .expect("factory");
        let _: u64 = call(o.as_mut(), "update", &(vec![20.0, 0.0], vec![2u64, 0u64]));
        let (_, flat): (u64, Vec<f64>) = call(o.as_mut(), "read", &());
        assert_eq!(flat, vec![10.0, 9.0], "empty cluster 1 keeps its position");
    }

    #[test]
    fn centroids_shape_mismatch_rejected() {
        let mut o = centroids(2, 2, 1);
        let cc = CallCtx { ticket: Ticket(0), replicated: false, node: 0 };
        let bad = crucial::codec::to_bytes(&(vec![1.0], vec![1u64])).expect("encode");
        assert!(o.invoke(&cc, "update", &bad).is_err());
    }

    #[test]
    fn delta_accumulates_per_generation() {
        let mut o = GlobalDelta::factory(&[]).expect("factory");
        let s: f64 = call(o.as_mut(), "add", &(0u64, 1.5));
        assert_eq!(s, 1.5);
        let s: f64 = call(o.as_mut(), "add", &(0u64, 2.5));
        assert_eq!(s, 4.0);
        let _: f64 = call(o.as_mut(), "add", &(1u64, 10.0));
        let (sum, n): (f64, u32) = call(o.as_mut(), "get", &0u64);
        assert_eq!((sum, n), (4.0, 2));
        let hist: Vec<(u64, f64, u32)> = call(o.as_mut(), "history", &());
        assert_eq!(hist.len(), 2);
    }

    #[test]
    fn weights_apply_averaged_gradient_step() {
        let init = WeightsInit { dims: 2, workers: 2, learning_rate: 0.5 };
        let mut o = GlobalWeights::factory(&crucial::codec::to_bytes(&init).expect("encode"))
            .expect("factory");
        let _: u64 = call(o.as_mut(), "update", &(vec![1.0, 0.0], 0.7));
        let g: u64 = call(o.as_mut(), "update", &(vec![3.0, 2.0], 0.9));
        assert_eq!(g, 1);
        let (generation, w): (u64, Vec<f64>) = call(o.as_mut(), "read", &());
        assert_eq!(generation, 1);
        // w -= lr/workers * acc = 0.25 * (4, 2)
        assert_eq!(w, vec![-1.0, -0.5]);
        let losses: Vec<f64> = call(o.as_mut(), "losses", &());
        assert_eq!(losses, vec![0.8]);
    }

    #[test]
    fn save_restore_round_trips() {
        let mut o = centroids(2, 3, 2);
        let _: u64 = call(o.as_mut(), "update", &(vec![1.0; 6], vec![1u64, 1u64]));
        let state = o.save();
        let mut o2 = GlobalCentroids::default();
        o2.restore(&state).expect("restore");
        assert_eq!(o2.contributions, 1);
        assert_eq!(o2.k, 2);
    }
}
