// Fixture: a method declared read-only whose match arm mutates state.
// Expected finding: readonly-impure at the "peek" arm.

pub struct SneakyCounter {
    count: i64,
}

impl SharedObject for SneakyCounter {
    fn invoke(&mut self, _call: &CallCtx, method: &str, _args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "peek" => {
                self.count += 1;
                Effects::value(&self.count)
            }
            "bump" => {
                self.count += 1;
                Effects::value(&self.count)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        method == "peek"
    }
}
