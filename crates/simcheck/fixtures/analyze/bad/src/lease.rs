// Fixture: wall clock laundered into a *lease* field of a wire struct.
// The tempting bug in a cache lease: "how long is the entry still good"
// computed from the host clock, then shipped inside `ReadStamp` where it
// would steer every peer's revalidation decisions. The deadline read sits
// one helper below the sink and no line in `stamp_read` names a clock
// API. Expected finding: determinism-taint at the `ReadStamp` literal.

fn lease_deadline_ms() -> u64 {
    let now = std::time::SystemTime::now();
    let epoch_ms = now.duration_since(std::time::UNIX_EPOCH).unwrap().as_millis() as u64;
    epoch_ms + 5
}

pub fn stamp_read(lamport: u64) -> ReadStamp {
    ReadStamp { lamport, lease_ms: lease_deadline_ms() }
}
