// Fixture: a function explicitly marked as a nondeterminism source (the
// same marker `simcore::sync` uses for ASLR-dependent resource ids) whose
// value reaches a kernel messaging sink. Expected finding:
// determinism-taint at the `ctx.send` call in `leak`.

// simanalyze: nondet_source
fn host_entropy() -> u64 {
    0x5eed
}

pub fn leak(ctx: &mut Ctx, peer: Addr) {
    let seed = host_entropy();
    ctx.send(peer, seed);
}
