// Fixture wire-message types: structs defined in a `protocol.rs` are
// taint sinks for the determinism pass.

pub struct Announce {
    pub seq: u32,
    pub sent_ms: u64,
}

pub struct ReadStamp {
    pub lamport: u64,
    pub lease_ms: u64,
}

pub struct RestoreBill {
    pub base_ms: u64,
    pub cost_ms: u64,
}

pub struct WalSegmentHeader {
    pub gen: u32,
    pub seq: u64,
    pub records: u32,
    pub sealed_ms: u64,
}
