// Fixture: wall clock laundered into a snapshot *restore-cost* bill.
// The tempting bug in a cold-start tier: "how many pages went dirty since
// the snapshot" estimated from elapsed host time, folded into the restore
// cost, and shipped inside `RestoreBill` — where it would steer every
// peer's floor-vs-restore trade off the host clock. The clock read sits
// two helpers below the sink and no line in `bill_restore` names a clock
// API. Expected finding: determinism-taint at the `RestoreBill` literal.

fn pages_since_snapshot() -> u64 {
    let now = std::time::SystemTime::now();
    let secs = now.duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    secs % 9175
}

fn restore_cost_ms(base_ms: u64) -> u64 {
    base_ms + pages_since_snapshot() / 100
}

pub fn bill_restore(base_ms: u64) -> RestoreBill {
    RestoreBill { base_ms, cost_ms: restore_cost_ms(base_ms) }
}
