// Fixture: the interprocedural case a line-regex provably cannot catch.
// The wall-clock read sits two calls below the sink; neither `stamp_ms`
// nor `announce` mentions any clock API on any line. Expected finding:
// determinism-taint at the `Announce` literal in `announce`.

fn raw_clock_ms() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_millis() as u64
}

fn stamp_ms() -> u64 {
    raw_clock_ms()
}

pub fn announce(seq: u32) -> Announce {
    Announce { seq, sent_ms: stamp_ms() }
}
