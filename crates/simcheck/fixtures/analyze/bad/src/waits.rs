// Fixture: a blocking `ctx.call` with no `Ctx::annotate_wait` anywhere on
// any path reaching it (this fn has no callers in the tree). Expected
// finding: wait-annotation at the call site.

pub fn fetch_unannotated(ctx: &mut Ctx, addr: Addr) -> Reply {
    ctx.call(addr, Request::Get, TIMEOUT)
}
