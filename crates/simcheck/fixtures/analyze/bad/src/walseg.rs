// Fixture: wall clock laundered into a *WAL segment header*. The
// tempting bug in a durability layer: "when was this segment sealed"
// stamped from the host clock so operators can eyeball blob ages — but
// the header travels in the segment payload, so replay order and
// recovery decisions on a peer would depend on the writer's wall clock.
// The clock read hides behind a seal-time helper; no line in
// `seal_segment` names a clock API. Expected finding: determinism-taint
// at the `WalSegmentHeader` literal.

fn sealed_at_ms() -> u64 {
    let now = std::time::SystemTime::now();
    now.duration_since(std::time::UNIX_EPOCH).unwrap().as_millis() as u64
}

pub fn seal_segment(gen: u32, seq: u64, records: u32) -> WalSegmentHeader {
    WalSegmentHeader { gen, seq, records, sealed_ms: sealed_at_ms() }
}
