// Fixture: determinism-clean counterparts of the bad tree. Virtual time
// from the kernel may flow into protocol messages; a reasoned allow
// suppresses taint origination for deliberate host-side measurement.

pub fn virtual_stamp_ms(ctx: &Ctx) -> u64 {
    ctx.now().as_millis() as u64
}

pub fn announce(ctx: &Ctx, seq: u32) -> Announce {
    Announce { seq, sent_ms: virtual_stamp_ms(ctx) }
}

pub fn bench_elapsed() -> u64 {
    // simlint: allow(wall-clock, reason = "host-side bench timing, never enters sim state")
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
