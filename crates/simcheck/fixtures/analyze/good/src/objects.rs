// Fixture: an honest read-only method, plus one that proves purity
// through a `&self` helper. Both must land in the proven-pure report.

pub struct Counter {
    count: i64,
    history: Vec<i64>,
}

impl Counter {
    fn total(&self) -> i64 {
        self.count + self.history.len() as i64
    }
}

impl SharedObject for Counter {
    fn invoke(&mut self, _call: &CallCtx, method: &str, _args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "get" => Effects::value(&self.count),
            "summary" => Effects::value(&self.total()),
            "bump" => {
                self.count += 1;
                self.history.push(self.count);
                Effects::value(&self.count)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "get" | "summary")
    }
}
