// Fixture wire-message types for the clean tree.

pub struct Announce {
    pub seq: u32,
    pub sent_ms: u64,
}
