// Fixture: both ways a blocking call is covered. `fetch` annotates
// through a wrapper helper (the transitive closure must count it);
// `raw_call` never annotates itself but its only caller does, so the
// reverse-call-graph walk finds every path covered.

fn note_wait(ctx: &mut Ctx, addr: Addr) {
    ctx.annotate_wait(addr.into_raw(), WaitKind::Call, "store", "fetch");
}

pub fn fetch(ctx: &mut Ctx, addr: Addr) -> Reply {
    note_wait(ctx, addr);
    ctx.call(addr, Request::Get, TIMEOUT)
}

fn raw_call(ctx: &mut Ctx, addr: Addr) -> Reply {
    ctx.call(addr, Request::Get, TIMEOUT)
}

pub fn safe_call(ctx: &mut Ctx, addr: Addr) -> Reply {
    ctx.annotate_wait(addr.into_raw(), WaitKind::Call, "store", "safe_call");
    raw_call(ctx, addr)
}
