// Fixture: every violation carries a reasoned allow. Expected findings:
// none.

fn measured() -> std::time::Duration {
    // simlint: allow(wall-clock, reason = "operator-facing wall time")
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

fn native() {
    // simlint: allow(native-thread, reason = "intentionally native baseline")
    let h = std::thread::spawn(|| ());
    let _ = h.join();
}
