// Fixture: a reasonless allow. Expected findings: bad-allow for the
// directive AND wall-clock for the line it failed to cover.

fn measured() -> std::time::Duration {
    // simlint: allow(wall-clock)
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
