// Fixture: a method declared read-only that mutates. Expected findings:
// readonly-mutation at the "peek" arm; the honest "get" arm is clean.

impl SharedObject for Sneaky {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "peek" => {
                self.count += 1;
                Effects::value(&self.count)
            }
            "get" => Effects::value(&self.count),
            "bump" => {
                self.count += 1;
                Effects::value(&self.count)
            }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }

    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "peek" | "get")
    }
}
