// Fixture: a native thread spawn. Expected findings: native-thread once.

fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1);
    let _ = h.join();
}
