// Fixture: a metric stamped from host time. Expected findings: trace-time
// at the first `metric_record` line; the allowed one is clean, and so is
// the SimTime-derived recording.

fn traced(ctx: &Ctx, t0: HostTimer) {
    ctx.metric_record("bench.op", t0.elapsed());
    // simlint: allow(trace-time, reason = "operator-facing host duration")
    ctx.metric_record("bench.host", t0.elapsed());
    let s0 = ctx.now();
    ctx.metric_record("bench.sim", ctx.now() - s0);
}
