// Fixture: wall-clock reads. Expected findings: wall-clock at the two
// `now()` call lines; the string and comment mentions are clean.

fn elapsed() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    let _label = "Instant::now"; // Instant::now in a comment
    t0.elapsed()
}
