// Fixture: a reconcile loop stamping its tick off the host clock instead
// of the virtual `Ticker`. Expected findings: wall-clock at the `now()`
// line — the control plane's decisions must be a function of simulated
// time only or seeded runs diverge.

fn reconcile_tick(mut on_tick: impl FnMut()) {
    let _tick_started = std::time::Instant::now();
    on_tick();
}
