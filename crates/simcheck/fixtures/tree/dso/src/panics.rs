// Fixture: panics on the DSO path. Expected findings: no-panic at the
// unwrap line and at the undocumented expect; the documented expect and
// the test module are clean.

fn handle(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn decode(x: Option<u8>) -> u8 {
    x.expect("undocumented")
}

fn checked(x: Option<u8>) -> u8 {
    // invariant: the caller inserted x just above.
    x.expect("documented")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        None::<u8>.unwrap();
        panic!("fine here");
    }
}
