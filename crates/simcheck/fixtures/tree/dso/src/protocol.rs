// Fixture: protocol types. Expected findings: serde-derive on `Naked`
// only; `Wired` has the derives and `Hidden` is private.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone)]
pub struct Naked {
    pub x: u8,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Wired {
    pub x: u8,
}

#[derive(Debug)]
struct Hidden {
    x: u8,
}
