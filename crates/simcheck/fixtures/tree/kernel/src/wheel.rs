// Fixture: kernel event-queue internals (the timing wheel / slab arena)
// are not exempt from the wall-clock rule. A host timestamp taken while
// staging a slot would silently break determinism. Expected finding:
// wall-clock at the `Instant::now` line; the cursor math is clean.

pub struct Wheel {
    cursor: u64,
}

impl Wheel {
    pub fn advance(&mut self) -> u64 {
        let _stamp = std::time::Instant::now();
        self.cursor = self.cursor.wrapping_add(1);
        self.cursor
    }
}
