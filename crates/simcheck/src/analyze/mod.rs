//! `simanalyze`: syntax-aware, interprocedural determinism and purity
//! analysis over the whole workspace.
//!
//! Three passes run on a [`Workspace`] built from the lexer/parser
//! ([`crate::lex`], [`crate::syntax`]):
//!
//! 1. **Determinism taint** ([`taint`]) — values originating from
//!    wall-clock reads, OS randomness or thread identity may not flow
//!    (through locals, call returns or struct fields) into protocol
//!    message types, trace/metric recording, or kernel time/messaging
//!    primitives.
//! 2. **Read-only purity** ([`purity`]) — every `SharedObject` method
//!    declared in `is_readonly` is checked to never mutate `self`,
//!    directly or through helper methods, and to never reach interior
//!    mutability. Clean methods are emitted as a machine-readable
//!    [`PureReport`] the DSO runtime can consult to skip its
//!    snapshot-compare verification.
//! 3. **Wait-annotation coverage** ([`waits`]) — every indefinitely
//!    blocking kernel primitive call (`ctx.park()`, untimed `ctx.call`)
//!    must be reachable only through code that calls
//!    `Ctx::annotate_wait`, so `deadlock_report()` wait-for graphs are
//!    never silently incomplete.
//!
//! All passes honour `// simlint: allow(<rule>, reason = "...")`
//! suppressions (rules `determinism-taint`, `readonly-impure`,
//! `wait-annotation`; a reasoned `wall-clock` allow on a source line also
//! stops taint from originating there). Test code (`#[cfg(test)]` mods,
//! `#[test]` fns, `tests/` and `benches/` directories) is exempt, as are
//! the kernel's own internals (`simcore/src/kernel.rs` — the determinism
//! boundary itself) and vendored `compat/` shims.
//!
//! The analysis is name-based and conservative-by-construction where it
//! matters (any candidate callee tainting a call, any field of a name
//! tainting that field name), but it is an *analysis of conventions*,
//! not a soundness proof: receiver types are resolved heuristically, so
//! DESIGN.md §"Static analysis" documents the contract.

pub mod purity;
pub mod taint;
pub mod waits;

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::Path;

use crate::lex::TokKind;
use crate::syntax::{match_close, FileAst, FnDef, StructDef};
use crate::{Finding, Rule};

/// Identifies one function: (file index, fn index within the file).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct FnId {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`FileAst::fns`].
    pub idx: usize,
}

/// One extracted call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The callee's final name segment.
    pub name: String,
    /// Full path segments for path calls (`simcore::codec::to_bytes` →
    /// `["simcore", "codec", "to_bytes"]`); empty for method calls.
    pub path: Vec<String>,
    /// For method calls: the leftmost ident of the receiver chain
    /// (`self.items.push(…)` → `self`); `None` when the receiver is a
    /// complex expression.
    pub recv_root: Option<String>,
    /// Field idents between root and method (`self.items.push` →
    /// `["items"]`).
    pub recv_chain: Vec<String>,
    /// Whether this is a `.method(…)` call.
    pub is_method: bool,
    /// Token-index ranges of the top-level arguments.
    pub args: Vec<(usize, usize)>,
    /// Token index of the callee name.
    pub at: usize,
    /// 1-based source line of the callee name.
    pub line: u32,
}

/// The parsed workspace plus the cross-file indexes the passes share.
pub struct Workspace {
    /// Parsed files.
    pub files: Vec<FileAst>,
    /// Per file: line → rules allowed there by a reasoned directive.
    pub allows: Vec<HashMap<usize, HashSet<Rule>>>,
    /// Function name → definitions with that name, workspace-wide.
    pub fn_index: HashMap<String, Vec<FnId>>,
    /// Struct/enum name → defining (file, struct index).
    pub struct_index: HashMap<String, (usize, usize)>,
    /// Types defined in `protocol.rs` files (wire-message types).
    pub protocol_types: BTreeSet<String>,
    /// Per file: fn indices carrying a `// simanalyze: nondet_source`
    /// marker comment.
    pub nondet_marks: Vec<HashSet<usize>>,
    /// Per [`FnId`] (flattened): extracted call sites.
    calls: HashMap<FnId, Vec<CallSite>>,
}

impl Workspace {
    /// Builds a workspace from `(path, source)` pairs.
    pub fn build(sources: Vec<(String, String)>) -> Workspace {
        let mut files = Vec::new();
        let mut allows = Vec::new();
        let mut nondet_marks = Vec::new();
        for (path, src) in sources {
            let ast = crate::syntax::parse_file(&path, &src);
            let views = crate::lex::views(&ast.src, &ast.toks);
            let comment_lines: Vec<&str> = views.comments.lines().collect();
            // BadAllow findings are simlint's to report; discard here.
            let mut sink = Vec::new();
            allows.push(crate::parse_allows(&path, &comment_lines, &mut sink));
            let marker_lines: HashSet<usize> = ast
                .toks
                .iter()
                .filter(|t| {
                    matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                        && t.text(&ast.src).contains("simanalyze: nondet_source")
                })
                .map(|t| t.line as usize)
                .collect();
            let marks: HashSet<usize> = ast
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    (1..=3).any(|d| marker_lines.contains(&(f.line as usize).saturating_sub(d)))
                })
                .map(|(i, _)| i)
                .collect();
            nondet_marks.push(marks);
            files.push(ast);
        }
        let mut fn_index: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut struct_index = HashMap::new();
        let mut protocol_types = BTreeSet::new();
        for (fi, file) in files.iter().enumerate() {
            for (i, f) in file.fns.iter().enumerate() {
                fn_index.entry(f.name.clone()).or_default().push(FnId { file: fi, idx: i });
            }
            let is_protocol = Path::new(&file.path).file_name().is_some_and(|n| n == "protocol.rs");
            for (si, s) in file.structs.iter().enumerate() {
                struct_index.entry(s.name.clone()).or_insert((fi, si));
                if is_protocol {
                    protocol_types.insert(s.name.clone());
                }
            }
        }
        let mut ws = Workspace {
            files,
            allows,
            fn_index,
            struct_index,
            protocol_types,
            nondet_marks,
            calls: HashMap::new(),
        };
        let mut calls = HashMap::new();
        for fi in 0..ws.files.len() {
            for i in 0..ws.files[fi].fns.len() {
                let id = FnId { file: fi, idx: i };
                if let Some(body) = ws.files[fi].fns[i].body {
                    calls.insert(id, extract_calls(&ws.files[fi], body));
                }
            }
        }
        ws.calls = calls;
        ws
    }

    /// The function's definition.
    pub fn fn_def(&self, id: FnId) -> &FnDef {
        &self.files[id.file].fns[id.idx]
    }

    /// The function's extracted call sites (empty for bodyless fns).
    pub fn calls_of(&self, id: FnId) -> &[CallSite] {
        self.calls.get(&id).map_or(&[], Vec::as_slice)
    }

    /// The struct definition by name, if the workspace defines it.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.struct_index.get(name).map(|&(fi, si)| &self.files[fi].structs[si])
    }

    /// Whether `rule` is allowed at `line` of file `fi`.
    pub fn allowed(&self, fi: usize, rule: Rule, line: usize) -> bool {
        self.allows[fi].get(&line).is_some_and(|s| s.contains(&rule))
    }

    /// Whether the file is exempt from analysis findings: test and bench
    /// trees, and the kernel's own internals.
    pub fn exempt_file(&self, fi: usize) -> bool {
        let p = &self.files[fi].path;
        p.contains("/tests/") || p.contains("/benches/") || p.ends_with("simcore/src/kernel.rs")
    }

    /// Resolves a call site to candidate definitions. Name-based with two
    /// narrowing heuristics: an explicit `Type::name` path keeps only
    /// impls of `Type`; a `self.name(…)` call inside an impl keeps only
    /// impls of the caller's `Self` type when any exist.
    pub fn resolve(&self, caller: FnId, call: &CallSite) -> Vec<FnId> {
        let Some(cands) = self.fn_index.get(&call.name) else { return Vec::new() };
        if call.path.len() >= 2 {
            let qual = &call.path[call.path.len() - 2];
            if qual.chars().next().is_some_and(char::is_uppercase) {
                let narrowed: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|id| self.fn_def(*id).impl_type.as_deref() == Some(qual))
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
        }
        if call.is_method && call.recv_root.as_deref() == Some("self") && call.recv_chain.is_empty()
        {
            if let Some(ty) = &self.fn_def(caller).impl_type {
                let narrowed: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|id| self.fn_def(*id).impl_type.as_deref() == Some(ty.as_str()))
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
        }
        cands.clone()
    }

    /// Reverse edges: every (caller, call-site index) whose callee name is
    /// `name`.
    pub fn callers_of(&self, name: &str) -> Vec<(FnId, usize)> {
        let mut out = Vec::new();
        for (&id, sites) in &self.calls {
            for (ci, c) in sites.iter().enumerate() {
                if c.name == name {
                    out.push((id, ci));
                }
            }
        }
        out.sort_by_key(|(id, ci)| (id.file, id.idx, *ci));
        out
    }
}

/// Extracts call sites from a body token range.
fn extract_calls(file: &FileAst, body: (usize, usize)) -> Vec<CallSite> {
    let toks = &file.toks;
    let src = &file.src;
    let mut out = Vec::new();
    let (lo, hi) = body;
    for i in lo..hi {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // A call is `name (…)`, allowing a turbofish in between; a macro
        // (`name!(…)`) is not a call.
        let mut j = i + 1;
        if j < hi && toks[j].is_punct(src, b':') && j + 1 < hi && toks[j + 1].is_punct(src, b':') {
            // `name::<T>(…)` turbofish, or a longer path — the path case
            // is handled when the *last* segment is visited.
            if j + 2 < hi && toks[j + 2].is_punct(src, b'<') {
                let mut depth = 0i32;
                j += 2;
                while j < hi {
                    if toks[j].is_punct(src, b'<') {
                        depth += 1;
                    } else if toks[j].is_punct(src, b'>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            } else {
                continue;
            }
        }
        if j >= hi || !toks[j].is_punct(src, b'(') {
            continue;
        }
        if i + 1 < hi && toks[i + 1].is_punct(src, b'!') {
            continue; // macro
        }
        let close = match_close(toks, src, j, hi);
        // Split the argument tokens at depth-1 commas.
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut start = j + 1;
        for (k, tk) in toks.iter().enumerate().take(close).skip(j) {
            if tk.kind == TokKind::Punct {
                match src.as_bytes()[tk.lo] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b',' if depth == 1 => {
                        args.push((start, k));
                        start = k + 1;
                    }
                    _ => {}
                }
            }
        }
        if start < close {
            args.push((start, close));
        }
        // Walk backwards: path segments or a receiver chain.
        let mut path = vec![toks[i].text(src).to_string()];
        let mut k = i;
        while k >= 2
            && toks[k - 1].is_punct(src, b':')
            && toks[k - 2].is_punct(src, b':')
            && k >= 3
            && toks[k - 3].kind == TokKind::Ident
        {
            path.insert(0, toks[k - 3].text(src).to_string());
            k -= 3;
        }
        let (is_method, recv_root, recv_chain) =
            if path.len() == 1 && k >= 1 && toks[k - 1].is_punct(src, b'.') {
                // Receiver chain: `.`-separated idents going left.
                let mut chain = Vec::new();
                let mut m = k - 1;
                let mut root = None;
                while m >= 1 && toks[m].is_punct(src, b'.') && toks[m - 1].kind == TokKind::Ident {
                    let ident = toks[m - 1].text(src).to_string();
                    if m >= 2 && toks[m - 2].is_punct(src, b'.') {
                        chain.insert(0, ident);
                        m -= 2;
                    } else {
                        root = Some(ident);
                        break;
                    }
                }
                (true, root, chain)
            } else {
                (false, None, Vec::new())
            };
        let name = path.last().cloned().unwrap_or_default();
        out.push(CallSite {
            name,
            path: if is_method { Vec::new() } else { path },
            recv_root,
            recv_chain,
            is_method,
            args,
            at: i,
            line: toks[i].line,
        });
    }
    out
}

/// Walks `.rs` files under `root` (skipping build output, fixtures,
/// vendored compat shims), producing `(path, source)` pairs with paths
/// shown relative to `root`'s parent — the same convention as
/// [`crate::lint_tree`].
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn read_tree(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(name.as_ref(), "target" | "fixtures" | ".git" | "compat") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let shown = path.strip_prefix(root.parent().unwrap_or(root)).unwrap_or(&path);
        out.push((shown.display().to_string(), src));
    }
    Ok(out)
}

/// The full analysis result.
pub struct Analysis {
    /// Diagnostics from all three passes, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Proven-pure `(type, method)` pairs from the purity pass.
    pub pure: purity::PureReport,
}

/// Runs all three passes over a built workspace.
pub fn analyze(ws: &Workspace) -> Analysis {
    let mut findings = Vec::new();
    findings.extend(taint::run(ws));
    let pure = purity::run(ws, &mut findings);
    findings.extend(waits::run(ws));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Analysis { findings, pure }
}

/// Convenience: read a tree, build the workspace, run the passes.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn analyze_tree(root: &Path) -> std::io::Result<Analysis> {
    let ws = Workspace::build(read_tree(root)?);
    Ok(analyze(&ws))
}
