//! Pass 2: read-only purity of `SharedObject` methods.
//!
//! For every `impl SharedObject for T`, the method names quoted in
//! `is_readonly` are located as match arms inside `invoke` and each arm
//! is checked — transitively through `self.helper()` calls resolved to
//! the same `Self` type — for anything that could mutate the object:
//! field assignments, known container mutators, `&mut self` escapes,
//! `mem::take`/`replace`/`swap` on self, and interior-mutability entry
//! points. A provably-mutating arm is a [`Rule::ReadonlyImpure`]
//! finding.
//!
//! The pass also produces the positive artifact: a [`PureReport`] of
//! `(type, method)` pairs whose arms are *proven* clean (and whose
//! struct has no interior-mutability fields). The DSO runtime loads this
//! report to skip the snapshot-compare `verify_readonly` check for
//! proven methods — the static proof subsumes the runtime one. Methods
//! the analysis cannot prove either way (unresolvable helpers, unknown
//! receiver types) are simply left out of the report: no finding, no
//! skipped snapshot.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use super::{FnId, Workspace};
use crate::lex::TokKind;
use crate::{Finding, Rule};

/// Container methods that mutate their receiver.
const MUTATORS: [&str; 16] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "remove",
    "pop",
    "pop_front",
    "pop_back",
    "clear",
    "drain",
    "truncate",
    "retain",
    "extend",
    "swap",
    "sort",
    "dedup",
];

/// Interior-mutability entry points: callable through `&self` yet able to
/// mutate.
const INTERIOR: [&str; 12] = [
    "borrow_mut",
    "lock",
    "write",
    "store",
    "set",
    "replace",
    "take",
    "get_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
];

/// Read-only container methods safe to call on a nested `self` field.
const READONLY_OK: [&str; 18] = [
    "len",
    "is_empty",
    "get",
    "contains",
    "contains_key",
    "iter",
    "keys",
    "values",
    "first",
    "last",
    "front",
    "back",
    "peek",
    "capacity",
    "clone",
    "to_vec",
    "as_slice",
    "binary_search",
];

/// The outcome of checking one arm (or helper body).
enum Verdict {
    /// No mutation found; every reached construct is understood.
    Pure,
    /// No mutation found, but something could not be resolved — not a
    /// finding, but not provably pure either. Carries what blocked proof.
    Unproven(String),
    /// A mutation was found; carries the description.
    Impure(String),
}

/// Machine-readable list of proven-pure readonly methods.
#[derive(Default)]
pub struct PureReport {
    /// `(type name, method name)` pairs, sorted.
    pub entries: BTreeSet<(String, String)>,
}

impl PureReport {
    /// Renders the report: one `Type method` pair per line, sorted. The
    /// format is deliberately trivial so the `dso` crate (which simcheck
    /// depends on for nothing, and which must not depend back on
    /// simcheck) can parse it with `str::split_whitespace`.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# simanalyze proven-pure readonly methods: <Type> <method>\n");
        for (ty, m) in &self.entries {
            let _ = writeln!(out, "{ty} {m}");
        }
        out
    }
}

/// Runs the pass: findings for provably impure readonly arms, plus the
/// pure report.
pub fn run(ws: &Workspace, findings: &mut Vec<Finding>) -> PureReport {
    let mut report = PureReport::default();
    for fi in 0..ws.files.len() {
        for idx in 0..ws.files[fi].fns.len() {
            let f = &ws.files[fi].fns[idx];
            if f.name != "is_readonly"
                || f.impl_trait.as_deref() != Some("SharedObject")
                || f.body.is_none()
                || f.is_test
            {
                continue;
            }
            let Some(ty) = f.impl_type.clone() else { continue };
            check_impl(ws, FnId { file: fi, idx }, &ty, findings, &mut report);
        }
    }
    report
}

/// Checks one `impl SharedObject for <ty>` given its `is_readonly` fn.
fn check_impl(
    ws: &Workspace,
    ro_fn: FnId,
    ty: &str,
    findings: &mut Vec<Finding>,
    report: &mut PureReport,
) {
    let file = &ws.files[ro_fn.file];
    let src = &file.src;
    // Declared-readonly method names: string literals in the body.
    let (lo, hi) = ws.fn_def(ro_fn).body.expect("checked by caller");
    let names: Vec<String> = file.toks[lo..hi]
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.str_content(src).to_string())
        .collect();
    if names.is_empty() {
        return;
    }
    // The sibling `invoke` of the same impl type.
    let invoke = file.fns.iter().position(|g| {
        g.name == "invoke"
            && g.impl_type.as_deref() == Some(ty)
            && g.impl_trait.as_deref() == Some("SharedObject")
            && g.body.is_some()
    });
    let Some(invoke_idx) = invoke else { return };
    let inv_id = FnId { file: ro_fn.file, idx: invoke_idx };
    let (ilo, ihi) = ws.fn_def(inv_id).body.expect("position filtered on body");
    let interior_struct = ws.struct_def(ty).map(|s| s.has_interior_mut);
    for name in &names {
        let Some((arm, str_line)) = find_arm(file, (ilo, ihi), name) else { continue };
        let mut visited = BTreeSet::new();
        match check_tokens(ws, ro_fn.file, ty, arm, 0, &mut visited) {
            Verdict::Impure(why) => {
                if !ws.allowed(ro_fn.file, Rule::ReadonlyImpure, str_line)
                    && !ws.exempt_file(ro_fn.file)
                {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: str_line,
                        rule: Rule::ReadonlyImpure,
                        msg: format!("method \"{name}\" of {ty} is declared read-only but {why}"),
                    });
                }
            }
            Verdict::Unproven(_) => {}
            Verdict::Pure => {
                if interior_struct == Some(false) {
                    report.entries.insert((ty.to_string(), name.clone()));
                }
            }
        }
    }
}

/// Locates the match arm whose pattern contains the string literal
/// `name` inside the `invoke` body; returns the arm's token range and
/// the literal's line.
fn find_arm(
    file: &crate::syntax::FileAst,
    body: (usize, usize),
    name: &str,
) -> Option<((usize, usize), usize)> {
    let src = &file.src;
    let (lo, hi) = body;
    for i in lo..hi {
        let t = &file.toks[i];
        if t.kind != TokKind::Str || t.str_content(src) != name {
            continue;
        }
        // Scan forward over the alternation (`"a" | "b"`) to a `=>`.
        let mut j = i + 1;
        while j < hi && (file.toks[j].kind == TokKind::Str || file.toks[j].is_punct(src, b'|')) {
            j += 1;
        }
        let arrow = j + 1 < hi
            && file.toks[j].is_punct(src, b'=')
            && file.toks[j + 1].is_punct(src, b'>')
            && file.toks[j].glued(&file.toks[j + 1]);
        if !arrow {
            continue; // a string used in an expression, not an arm pattern
        }
        let start = j + 2;
        if start >= hi {
            return None;
        }
        let end = if file.toks[start].is_punct(src, b'{') {
            crate::syntax::match_close(&file.toks, src, start, hi) + 1
        } else {
            // Up to the first comma at arm depth.
            let mut depth = 0i32;
            let mut e = start;
            while e < hi {
                let te = &file.toks[e];
                if te.kind == TokKind::Punct {
                    match src.as_bytes()[te.lo] {
                        b'(' | b'[' | b'{' => depth += 1,
                        b')' | b']' | b'}' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        b',' if depth == 0 => break,
                        _ => {}
                    }
                }
                e += 1;
            }
            e
        };
        return Some(((start, end.min(hi)), t.line as usize));
    }
    None
}

/// Scans a token range for mutations of `self`, recursing through
/// `self.helper()` calls resolved within the same impl type.
fn check_tokens(
    ws: &Workspace,
    fi: usize,
    ty: &str,
    range: (usize, usize),
    depth: usize,
    visited: &mut BTreeSet<String>,
) -> Verdict {
    if depth > 8 {
        return Verdict::Unproven("helper call chain deeper than 8".to_string());
    }
    let file = &ws.files[fi];
    let src = &file.src;
    let mut unproven: Option<String> = None;
    let mut i = range.0;
    while i < range.1 {
        let t = &file.toks[i];
        // `&mut self` anywhere (method signature escape or a `&mut
        // self.field` argument).
        if t.is_punct(src, b'&')
            && i + 2 < range.1
            && file.toks[i + 1].kind == TokKind::Ident
            && file.toks[i + 1].text(src) == "mut"
            && file.toks[i + 2].kind == TokKind::Ident
            && file.toks[i + 2].text(src) == "self"
        {
            return Verdict::Impure("passes &mut self".to_string());
        }
        // `mem::take(&mut self…)` / replace / swap.
        if t.kind == TokKind::Ident
            && t.text(src) == "mem"
            && i + 3 < range.1
            && file.toks[i + 1].is_punct(src, b':')
            && file.toks[i + 2].is_punct(src, b':')
            && matches!(file.toks[i + 3].text(src), "take" | "replace" | "swap")
        {
            return Verdict::Impure(format!("calls mem::{} on self", file.toks[i + 3].text(src)));
        }
        if t.kind == TokKind::Ident && t.text(src) == "self" {
            if let Some(v) = check_self_use(ws, fi, ty, range, i, depth, visited) {
                match v {
                    Verdict::Impure(_) => return v,
                    Verdict::Unproven(why) => unproven.get_or_insert(why),
                    Verdict::Pure => unreachable!("check_self_use never returns Pure in Some"),
                };
            }
        }
        i += 1;
    }
    match unproven {
        Some(why) => Verdict::Unproven(why),
        None => Verdict::Pure,
    }
}

/// Inspects one `self`-rooted expression starting at token `i` (which is
/// the `self` ident). Returns `None` when the use is harmless.
fn check_self_use(
    ws: &Workspace,
    fi: usize,
    ty: &str,
    range: (usize, usize),
    i: usize,
    depth: usize,
    visited: &mut BTreeSet<String>,
) -> Option<Verdict> {
    let file = &ws.files[fi];
    let src = &file.src;
    let b = src.as_bytes();
    // Walk the dotted chain: self(.ident)*
    let mut chain: Vec<&str> = Vec::new();
    let mut j = i;
    while j + 2 < range.1
        && file.toks[j + 1].is_punct(src, b'.')
        && file.toks[j + 2].kind == TokKind::Ident
    {
        chain.push(file.toks[j + 2].text(src));
        j += 2;
    }
    // `self` alone (e.g. a plain `&self` borrow) is harmless.
    let after = j + 1;
    if chain.is_empty() {
        return None;
    }
    let last = *chain.last().expect("chain checked non-empty");
    let path = chain.join(".");
    if after < range.1 && file.toks[after].is_punct(src, b'(') {
        // A method call.
        if MUTATORS.contains(&last) {
            return Some(Verdict::Impure(format!("calls self.{path}(..)")));
        }
        if INTERIOR.contains(&last) {
            return Some(Verdict::Impure(format!(
                "reaches interior mutability via self.{path}(..)"
            )));
        }
        if chain.len() == 1 {
            // A helper on Self: resolve within the same impl type.
            let helpers: Vec<FnId> = ws
                .fn_index
                .get(last)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|id| ws.fn_def(*id).impl_type.as_deref() == Some(ty))
                        .collect()
                })
                .unwrap_or_default();
            if helpers.is_empty() {
                return Some(Verdict::Unproven(format!("cannot resolve self.{last}()")));
            }
            if !visited.insert(last.to_string()) {
                return None; // already checked along this path
            }
            for h in helpers {
                let hdef = ws.fn_def(h);
                if matches!(
                    hdef.self_kind,
                    crate::syntax::SelfKind::RefMut | crate::syntax::SelfKind::Value
                ) {
                    return Some(Verdict::Impure(format!(
                        "calls self.{last}(), which takes {} self",
                        if hdef.self_kind == crate::syntax::SelfKind::RefMut {
                            "&mut"
                        } else {
                            "owned"
                        }
                    )));
                }
                let Some(hbody) = hdef.body else {
                    return Some(Verdict::Unproven(format!("self.{last}() has no body here")));
                };
                match check_tokens(ws, h.file, ty, hbody, depth + 1, visited) {
                    Verdict::Impure(why) => {
                        return Some(Verdict::Impure(format!("calls self.{last}(), which {why}")))
                    }
                    Verdict::Unproven(why) => return Some(Verdict::Unproven(why)),
                    Verdict::Pure => {}
                }
            }
            return None;
        }
        if READONLY_OK.contains(&last) {
            return None;
        }
        // An unknown method on a nested field: type unknown, so unproven.
        return Some(Verdict::Unproven(format!("cannot classify self.{path}(..)")));
    }
    // An assignment: `self.path = …` or a compound `self.path op= …`.
    let mut k = after;
    if k + 1 < range.1
        && file.toks[k].kind == TokKind::Punct
        && file.toks[k].glued(&file.toks[k + 1])
    {
        match b[file.toks[k].lo] {
            b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^' => k += 1,
            c @ (b'<' | b'>') => {
                // `<<=`/`>>=` are compound assigns; `<=`/`>=` compare.
                if b[file.toks[k + 1].lo] == c
                    && k + 2 < range.1
                    && file.toks[k + 1].glued(&file.toks[k + 2])
                {
                    k += 2;
                } else {
                    return None;
                }
            }
            _ => {}
        }
    }
    if k < range.1 && file.toks[k].is_punct(src, b'=') {
        let is_eq = k + 1 < range.1
            && file.toks[k + 1].is_punct(src, b'=')
            && file.toks[k].glued(&file.toks[k + 1]);
        let is_arrow = k + 1 < range.1
            && file.toks[k + 1].is_punct(src, b'>')
            && file.toks[k].glued(&file.toks[k + 1]);
        if !is_eq && !is_arrow {
            if k == after {
                return Some(Verdict::Impure(format!("assigns self.{path}")));
            }
            return Some(Verdict::Impure(format!("compound-assigns self.{path}")));
        }
    }
    None
}
