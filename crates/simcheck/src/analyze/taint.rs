//! Pass 1: interprocedural determinism taint.
//!
//! A *source* is a call that observes the host instead of the simulation:
//! wall-clock reads (`Instant::now`, `SystemTime::now`), OS randomness
//! (`thread_rng`, `from_entropy`, `RandomState::new`), thread identity
//! (`std::thread::current`), or any function marked with a
//! `// simanalyze: nondet_source` comment. A *sink* is anything that
//! feeds simulation state or observable ordering: trace spans, metrics,
//! kernel timing/messaging primitives, and fields of protocol (wire
//! message) types.
//!
//! Taint flows through `let` bindings and assignments inside a function,
//! through return values via per-function summaries iterated to a
//! fixpoint, and through struct fields via a global name-keyed
//! tainted-field set (over-approximate: any field of that name anywhere).
//! A reasoned `allow(wall-clock)` or `allow(determinism-taint)` directive
//! on the source line stops taint from *originating* there; an
//! `allow(determinism-taint)` on a sink line suppresses that finding
//! only.

use std::collections::HashMap;

use super::{CallSite, FnId, Workspace};
use crate::lex::TokKind;
use crate::{Finding, Rule};

/// What a sink call feeds, by callee name.
fn sink_kind(name: &str) -> Option<&'static str> {
    match name {
        "span_begin" | "span_begin_under" | "span_instant" | "span_end" | "span_annotate" => {
            Some("trace span ordering")
        }
        "metric_record" | "metric_add" | "metric_incr" | "metric_push" | "record" => {
            Some("metrics")
        }
        "sleep" | "send" | "call" | "call_timeout" | "push_event" => {
            Some("kernel timing/messaging")
        }
        _ => None,
    }
}

/// If `call` is a nondeterminism source, describes it. `caller` narrows
/// resolution of `nondet_source`-marked callees.
fn source_desc(ws: &Workspace, caller: FnId, call: &CallSite) -> Option<String> {
    let qual = call.path.len().checked_sub(2).map(|i| call.path[i].as_str());
    match call.name.as_str() {
        "now" if matches!(qual, Some("Instant" | "SystemTime")) => {
            return Some(format!("wall-clock read {}::now", qual.unwrap_or("")));
        }
        "thread_rng" | "from_entropy" => {
            return Some(format!("OS randomness ({})", call.name));
        }
        "new" if qual == Some("RandomState") => {
            return Some("RandomState::new (random hash seed)".to_string());
        }
        "current" if qual == Some("thread") => {
            return Some("thread identity (std::thread::current)".to_string());
        }
        _ => {}
    }
    for id in ws.resolve(caller, call) {
        if ws.nondet_marks[id.file].contains(&id.idx) {
            return Some(format!("{}() (declared nondet_source)", call.name));
        }
    }
    None
}

/// Whether origination at this line is suppressed by a reasoned allow.
fn origin_allowed(ws: &Workspace, fi: usize, line: u32) -> bool {
    ws.allowed(fi, Rule::WallClock, line as usize)
        || ws.allowed(fi, Rule::DeterminismTaint, line as usize)
}

/// Splits a fn body into top-level statements (token ranges). Nested
/// blocks stay inside their enclosing statement.
fn statements(ws: &Workspace, id: FnId) -> Vec<(usize, usize)> {
    let file = &ws.files[id.file];
    let Some((lo, hi)) = file.fns[id.idx].body else { return Vec::new() };
    let b = file.src.as_bytes();
    let end = hi.saturating_sub(1); // drop the closing brace
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = lo + 1;
    for i in lo + 1..end {
        let t = &file.toks[i];
        if t.kind == TokKind::Punct {
            match b[t.lo] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => {
                    out.push((start, i + 1));
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    if start < end {
        out.push((start, end));
    }
    out
}

/// Per-function evaluation result.
#[derive(Default)]
struct FnEval {
    /// Why the return value is tainted, if it is.
    returns: Option<String>,
    /// Fields assigned a tainted value in this fn: (field, why).
    new_fields: Vec<(String, String)>,
}

struct Pass<'a> {
    ws: &'a Workspace,
    summaries: &'a HashMap<FnId, String>,
    fields: &'a HashMap<String, String>,
}

impl Pass<'_> {
    /// Why the token range holds a tainted value, if it does.
    fn range_why(
        &self,
        id: FnId,
        range: (usize, usize),
        locals: &HashMap<String, String>,
        local_fields: &HashMap<String, String>,
    ) -> Option<String> {
        let file = &self.ws.files[id.file];
        let src = &file.src;
        for i in range.0..range.1 {
            let t = &file.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let text = t.text(src);
            if let Some(why) = locals.get(text) {
                return Some(why.clone());
            }
            if i > range.0 && file.toks[i - 1].is_punct(src, b'.') {
                if let Some(why) = self.fields.get(text).or_else(|| local_fields.get(text)) {
                    return Some(format!("field `{text}` ({why})"));
                }
            }
        }
        for call in self.ws.calls_of(id) {
            if call.at < range.0 || call.at >= range.1 {
                continue;
            }
            if let Some(desc) = source_desc(self.ws, id, call) {
                if !origin_allowed(self.ws, id.file, call.line) {
                    return Some(format!(
                        "{desc} at {}:{}",
                        self.ws.files[id.file].path, call.line
                    ));
                }
            }
            for callee in self.ws.resolve(id, call) {
                if let Some(why) = self.summaries.get(&callee) {
                    return Some(format!("{}() -> {why}", call.name));
                }
            }
        }
        None
    }

    /// Evaluates one function: propagates taint through its locals to a
    /// fixpoint, computes the return/field summary, and (when `findings`
    /// is given) emits sink diagnostics.
    fn eval_fn(&self, id: FnId, findings: Option<&mut Vec<Finding>>) -> FnEval {
        let file = &self.ws.files[id.file];
        let fdef = &file.fns[id.idx];
        if fdef.body.is_none() {
            return FnEval::default();
        }
        let src = &file.src;
        let stmts = statements(self.ws, id);
        let mut locals: HashMap<String, String> = HashMap::new();
        let mut local_fields: HashMap<String, String> = HashMap::new();
        for _ in 0..10 {
            let mut changed = false;
            for &stmt in &stmts {
                let Some(why) = self.range_why(id, stmt, &locals, &local_fields) else { continue };
                for name in binding_targets(file, stmt) {
                    if let std::collections::hash_map::Entry::Vacant(e) = locals.entry(name) {
                        e.insert(why.clone());
                        changed = true;
                    }
                }
                for (target, is_field) in assign_targets(file, stmt) {
                    let map = if is_field { &mut local_fields } else { &mut locals };
                    if let std::collections::hash_map::Entry::Vacant(e) = map.entry(target) {
                        e.insert(why.clone());
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Return summary: a tainted tail expression or `return` statement.
        let mut returns = None;
        if fdef.has_ret {
            for (si, &stmt) in stmts.iter().enumerate() {
                let is_tail = si + 1 == stmts.len() && !file.toks[stmt.1 - 1].is_punct(src, b';');
                let has_return = (stmt.0..stmt.1).any(|i| {
                    file.toks[i].kind == TokKind::Ident && file.toks[i].text(src) == "return"
                });
                if (is_tail || has_return) && returns.is_none() {
                    returns = self.range_why(id, stmt, &locals, &local_fields).map(|why| {
                        format!("via {} ({}:{}): {why}", fdef.name, file.path, fdef.line)
                    });
                }
            }
        }
        if let Some(findings) = findings {
            self.emit_sinks(id, &locals, &local_fields, findings);
            self.emit_protocol_literals(id, &locals, &local_fields, findings);
        }
        FnEval { returns, new_fields: local_fields.into_iter().collect() }
    }

    /// Findings for tainted arguments reaching sink calls.
    fn emit_sinks(
        &self,
        id: FnId,
        locals: &HashMap<String, String>,
        local_fields: &HashMap<String, String>,
        findings: &mut Vec<Finding>,
    ) {
        let file = &self.ws.files[id.file];
        for call in self.ws.calls_of(id) {
            let Some(kind) = sink_kind(&call.name) else { continue };
            if self.ws.allowed(id.file, Rule::DeterminismTaint, call.line as usize) {
                continue;
            }
            for &arg in &call.args {
                if let Some(why) = self.range_why(id, arg, locals, local_fields) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: call.line as usize,
                        rule: Rule::DeterminismTaint,
                        msg: format!(
                            "nondeterministic value ({why}) flows into {kind} via {}(..)",
                            call.name
                        ),
                    });
                    break;
                }
            }
        }
    }

    /// Findings for tainted field expressions in protocol-type literals.
    fn emit_protocol_literals(
        &self,
        id: FnId,
        locals: &HashMap<String, String>,
        local_fields: &HashMap<String, String>,
        findings: &mut Vec<Finding>,
    ) {
        let file = &self.ws.files[id.file];
        let src = &file.src;
        let Some((lo, hi)) = file.fns[id.idx].body else { return };
        for i in lo..hi {
            let t = &file.toks[i];
            if t.kind != TokKind::Ident
                || !self.ws.protocol_types.contains(t.text(src))
                || i + 1 >= hi
                || !file.toks[i + 1].is_punct(src, b'{')
            {
                continue;
            }
            let ty = t.text(src).to_string();
            let close = crate::syntax::match_close(&file.toks, src, i + 1, hi);
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < close {
                let tk = &file.toks[k];
                if tk.kind == TokKind::Punct {
                    match src.as_bytes()[tk.lo] {
                        b'{' | b'(' | b'[' => depth += 1,
                        b'}' | b')' | b']' => depth -= 1,
                        _ => {}
                    }
                }
                // A `field: expr` initializer at literal depth.
                if depth == 1
                    && tk.kind == TokKind::Ident
                    && k + 1 < close
                    && file.toks[k + 1].is_punct(src, b':')
                    && !(k + 2 < close && file.toks[k + 2].is_punct(src, b':'))
                {
                    let field = tk.text(src).to_string();
                    // Expression runs to the next depth-1 comma.
                    let mut e = k + 2;
                    let mut d2 = 0i32;
                    while e < close {
                        let te = &file.toks[e];
                        if te.kind == TokKind::Punct {
                            match src.as_bytes()[te.lo] {
                                b'{' | b'(' | b'[' => d2 += 1,
                                b'}' | b')' | b']' => d2 -= 1,
                                b',' if d2 == 0 => break,
                                _ => {}
                            }
                        }
                        e += 1;
                    }
                    let line = tk.line as usize;
                    if !self.ws.allowed(id.file, Rule::DeterminismTaint, line) {
                        if let Some(why) = self.range_why(id, (k + 2, e), locals, local_fields) {
                            findings.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: Rule::DeterminismTaint,
                                msg: format!(
                                    "nondeterministic value ({why}) stored in field `{field}` of protocol type {ty}"
                                ),
                            });
                        }
                    }
                    k = e;
                    continue;
                }
                // Shorthand `Ty { field }` reusing a tainted local.
                if depth == 1
                    && tk.kind == TokKind::Ident
                    && k + 1 < close
                    && (file.toks[k + 1].is_punct(src, b',')
                        || file.toks[k + 1].is_punct(src, b'}'))
                {
                    let field = tk.text(src);
                    let line = tk.line as usize;
                    if let Some(why) = locals.get(field) {
                        if !self.ws.allowed(id.file, Rule::DeterminismTaint, line) {
                            findings.push(Finding {
                                file: file.path.clone(),
                                line,
                                rule: Rule::DeterminismTaint,
                                msg: format!(
                                    "nondeterministic value ({why}) stored in field `{field}` of protocol type {ty}"
                                ),
                            });
                        }
                    }
                }
                k += 1;
            }
        }
    }
}

/// Names bound by `let` patterns inside the statement.
fn binding_targets(file: &crate::syntax::FileAst, stmt: (usize, usize)) -> Vec<String> {
    let src = &file.src;
    let mut out = Vec::new();
    for i in stmt.0..stmt.1 {
        if file.toks[i].kind == TokKind::Ident && file.toks[i].text(src) == "let" {
            let mut j = i + 1;
            while j < stmt.1
                && file.toks[j].kind == TokKind::Ident
                && matches!(file.toks[j].text(src), "mut" | "ref")
            {
                j += 1;
            }
            if j < stmt.1 && file.toks[j].kind == TokKind::Ident {
                let name = file.toks[j].text(src);
                if name != "_" {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Targets of plain/compound assignments in the statement:
/// `(name, is_field)` — `x = …` yields `("x", false)`, `a.b = …` yields
/// `("b", true)`.
fn assign_targets(file: &crate::syntax::FileAst, stmt: (usize, usize)) -> Vec<(String, bool)> {
    let src = &file.src;
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    for i in stmt.0..stmt.1 {
        let t = &file.toks[i];
        if t.kind == TokKind::Punct {
            match b[t.lo] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && i > stmt.0 => {
                    // Not ==, =>, <=, >=, !=, or the tail of a compound op.
                    let next_eq = i + 1 < stmt.1
                        && file.toks[i + 1].is_punct(src, b'=')
                        && t.glued(&file.toks[i + 1]);
                    let prev = &file.toks[i - 1];
                    let prev_cmp = prev.kind == TokKind::Punct
                        && matches!(b[prev.lo], b'<' | b'>' | b'!')
                        && prev.glued(t);
                    if next_eq || prev_cmp {
                        continue;
                    }
                    // Walk left over a possible compound operator to the
                    // assigned place expression.
                    let mut j = i - 1;
                    while j > stmt.0
                        && file.toks[j].kind == TokKind::Punct
                        && matches!(
                            b[file.toks[j].lo],
                            b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^' | b'<' | b'>'
                        )
                        && file.toks[j].glued(t)
                    {
                        j -= 1;
                    }
                    if file.toks[j].kind == TokKind::Ident {
                        let name = file.toks[j].text(src).to_string();
                        let is_field = j > stmt.0 && file.toks[j - 1].is_punct(src, b'.');
                        out.push((name, is_field));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut summaries: HashMap<FnId, String> = HashMap::new();
    let mut fields: HashMap<String, String> = HashMap::new();
    // Fixpoint over return-taint summaries and the global field set.
    // Taint only ever gets added, so this converges; 20 rounds bounds the
    // longest call chain the analysis follows.
    for _ in 0..20 {
        let mut changed = false;
        let pass = Pass { ws, summaries: &summaries, fields: &fields };
        let mut add_sum = Vec::new();
        let mut add_fields = Vec::new();
        for fi in 0..ws.files.len() {
            for idx in 0..ws.files[fi].fns.len() {
                let id = FnId { file: fi, idx };
                let eval = pass.eval_fn(id, None);
                if let Some(why) = eval.returns {
                    if !summaries.contains_key(&id) {
                        add_sum.push((id, why));
                    }
                }
                for (f, why) in eval.new_fields {
                    if !fields.contains_key(&f) {
                        add_fields.push((f, why));
                    }
                }
            }
        }
        for (id, why) in add_sum {
            summaries.entry(id).or_insert(why);
            changed = true;
        }
        for (f, why) in add_fields {
            fields.entry(f).or_insert(why);
            changed = true;
        }
        if !changed {
            break;
        }
    }
    // Final pass: emit findings for non-test, non-exempt code.
    let pass = Pass { ws, summaries: &summaries, fields: &fields };
    let mut findings = Vec::new();
    for fi in 0..ws.files.len() {
        if ws.exempt_file(fi) {
            continue;
        }
        for idx in 0..ws.files[fi].fns.len() {
            if ws.files[fi].fns[idx].is_test {
                continue;
            }
            pass.eval_fn(FnId { file: fi, idx }, Some(&mut findings));
        }
    }
    findings
}
