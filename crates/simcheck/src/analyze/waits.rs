//! Pass 3: wait-annotation coverage.
//!
//! `Sim::deadlock_report()` reconstructs wait-for graphs from
//! `Ctx::annotate_wait` calls. A blocking primitive reached without any
//! annotation on the call path produces a silently incomplete report —
//! the scheduler still detects the stall, but the cycle it prints is
//! missing an edge. This pass finds every indefinitely blocking kernel
//! primitive call site (`ctx.park()` and untimed `ctx.call(..)`; the
//! timed variants and `recv` wake up on their own and are deliberately
//! out of scope) and checks that either the enclosing function annotates
//! before the block site, or every non-test path in the reverse call
//! graph passes through a function that calls `annotate_wait`.
//!
//! The traversal is name-based: callers are matched by callee name, so
//! it over-approximates the real call graph. That errs toward finding
//! an annotating caller (suppressing the diagnostic), which is the safe
//! direction for a gating lint.

use std::collections::HashSet;

use super::{CallSite, FnId, Workspace};
use crate::{Finding, Rule};

/// Whether the call site is an indefinitely blocking kernel primitive.
fn is_block_site(call: &CallSite) -> bool {
    let on_ctx = (call.recv_root.as_deref() == Some("ctx") && call.recv_chain.is_empty())
        || call.recv_chain.last().map(String::as_str) == Some("ctx");
    on_ctx && matches!(call.name.as_str(), "park" | "call")
}

/// Names of functions that annotate: `annotate_wait` itself plus the
/// transitive closure of functions calling an annotating function (so a
/// small `fn annotate(&self, ctx, ..)` helper wrapping `annotate_wait`
/// counts).
fn annotating_names(ws: &Workspace) -> HashSet<String> {
    let mut names: HashSet<String> = HashSet::new();
    names.insert("annotate_wait".to_string());
    loop {
        let mut changed = false;
        for fi in 0..ws.files.len() {
            for idx in 0..ws.files[fi].fns.len() {
                let id = FnId { file: fi, idx };
                let fname = &ws.fn_def(id).name;
                if names.contains(fname) {
                    continue;
                }
                if ws.calls_of(id).iter().any(|c| names.contains(&c.name)) {
                    names.insert(fname.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return names;
        }
    }
}

/// Token index of the first annotating call in the function, if any.
fn first_annotate(ws: &Workspace, id: FnId, ann: &HashSet<String>) -> Option<usize> {
    ws.calls_of(id).iter().find(|c| ann.contains(&c.name)).map(|c| c.at)
}

/// Walks the reverse call graph from `start` looking for a root function
/// (one with no non-test callers) reachable without passing an
/// annotating function. Returns a description of one such root.
fn uncovered_root(ws: &Workspace, start: FnId, ann: &HashSet<String>) -> Option<String> {
    let mut visited: HashSet<FnId> = HashSet::new();
    visited.insert(start);
    let mut stack = vec![start];
    while let Some(id) = stack.pop() {
        let name = &ws.fn_def(id).name;
        let mut has_caller = false;
        for (caller, _) in ws.callers_of(name) {
            if caller == id {
                continue; // direct recursion is not a caller
            }
            has_caller = true;
            let cdef = ws.fn_def(caller);
            // A test or bench driving the blocking call directly is fine:
            // deadlock reports only matter for simulated scenarios, and
            // those are started by exactly this kind of harness code.
            if cdef.is_test || ws.exempt_file(caller.file) {
                continue;
            }
            if !visited.insert(caller) {
                continue;
            }
            if first_annotate(ws, caller, ann).is_some() {
                continue; // this path is covered
            }
            stack.push(caller);
        }
        if !has_caller && id != start {
            let f = ws.fn_def(id);
            return Some(format!("{} ({}:{})", f.name, ws.files[id.file].path, f.line));
        }
        if !has_caller && id == start {
            return Some("it has no callers and does not annotate".to_string());
        }
    }
    None
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let ann = annotating_names(ws);
    for fi in 0..ws.files.len() {
        if ws.exempt_file(fi) {
            continue;
        }
        for idx in 0..ws.files[fi].fns.len() {
            let id = FnId { file: fi, idx };
            let fdef = ws.fn_def(id);
            if fdef.is_test || fdef.body.is_none() {
                continue;
            }
            let annotate_at = first_annotate(ws, id, &ann);
            for call in ws.calls_of(id) {
                if !is_block_site(call) {
                    continue;
                }
                // Untimed `call` only: `call_timeout` has its own wakeup.
                if annotate_at.is_some_and(|a| a < call.at) {
                    continue; // self-annotating before the block site
                }
                if ws.allowed(fi, Rule::WaitAnnotation, call.line as usize) {
                    continue;
                }
                if let Some(root) = uncovered_root(ws, id, &ann) {
                    findings.push(Finding {
                        file: ws.files[fi].path.clone(),
                        line: call.line as usize,
                        rule: Rule::WaitAnnotation,
                        msg: format!(
                            "blocking ctx.{}(..) is reachable without any Ctx::annotate_wait \
                             on the path (via {root}); deadlock reports will be incomplete",
                            call.name
                        ),
                    });
                }
            }
        }
    }
    findings
}
