//! CI gate: validates the `BENCH_*.json` reports written by the
//! `experiments` bin, dispatching on the top-level `bench` field.
//!
//! Usage: `cargo run -p simcheck --bin benchcheck -- [--json] <BENCH_*.json>`
//!
//! Checks, with the shared parser in [`simcheck::json`]:
//!
//! * `"bench": "kernel"` (`experiments kernel-bench`) — every expected
//!   section is present with positive `work`, `events`, `elapsed_s`, and
//!   `events_per_s`, and each section's `events_per_s` clears a hard
//!   sanity floor, set at roughly 1/10 of a typical release-build run so
//!   host noise cannot flake the gate but an order-of-magnitude kernel
//!   regression (a reintroduced hot-path allocation, an accidental O(n)
//!   queue scan) fails CI.
//! * `"bench": "consistency"` (`experiments consistency-ablate`) — every
//!   cell of the mode × cache matrix is present with a positive
//!   `reads_per_s`, and the relational claims of the ablation hold:
//!   replica reads beat primary-only reads, and the host-shared node
//!   cache beats the per-client cache under client churn. These are
//!   *claims the docs make*; the gate keeps them true.
//! * `"bench": "coldstart"` (`experiments coldstart`) — the three start
//!   tiers (`classic`, `snapshot`, `fork`) are present with positive
//!   `starts` and `mean_start_ms`, and the tier claims hold: a snapshot
//!   restore collapses the classic cold start by at least 4×, and a fork
//!   undercuts the snapshot restore by at least 2×.
//! * `"bench": "recovery"` (`experiments recovery`) — every checkpoint
//!   cadence row has a positive `recovery_ms` and full `objects`, every
//!   durability level appears in the `overhead` table, and the
//!   durability claims hold: checkpoints at a 500 ms cadence cut
//!   crash-recovery time by at least 1.2× and shrink the replayed log
//!   versus running on the WAL alone, while async group commit stays off
//!   the write path (within 1.2× of no durability at all).
//!
//! Exits non-zero listing each violation — as human-readable lines, or
//! with `--json` as a JSON array of `{section, observed, floor, msg}`
//! objects for tooling to consume.

use std::process::ExitCode;

use simcheck::json::{escape, parse, Json};

/// (section name, minimum events/sec) — the sanity floors.
///
/// Reference numbers from a release build of this workspace's container:
/// wheel_raw ~30M events/s (pure data structure), timer_churn and
/// ping_ring ~150-400k events/s (each event wakes an OS thread, so these
/// are context-switch bound), dso_smoke in the same range with many
/// events per object op. Floors sit an order of magnitude below.
const FLOORS: [(&str, f64); 4] = [
    ("wheel_raw", 2_000_000.0),
    ("timer_churn", 15_000.0),
    ("ping_ring", 15_000.0),
    ("dso_smoke", 15_000.0),
];

/// One gate failure, structured so `--json` output carries the numbers
/// (not just prose) for dashboards and trend tooling.
#[derive(Debug)]
struct Violation {
    /// The bench section at fault; empty for document-level problems.
    section: String,
    /// The offending measured value, when one exists.
    observed: Option<f64>,
    /// The floor it had to clear, for floor violations.
    floor: Option<f64>,
    /// Human-readable description.
    msg: String,
}

impl Violation {
    fn doc(msg: impl Into<String>) -> Violation {
        Violation { section: String::new(), observed: None, floor: None, msg: msg.into() }
    }

    fn section(name: &str, msg: impl Into<String>) -> Violation {
        Violation { section: name.to_string(), observed: None, floor: None, msg: msg.into() }
    }

    /// Human-readable one-liner (the pre-`--json` output format).
    fn human(&self) -> String {
        if self.section.is_empty() {
            self.msg.clone()
        } else {
            format!("{}: {}", self.section, self.msg)
        }
    }

    /// One JSON object; `observed`/`floor` are `null` when inapplicable.
    fn json(&self) -> String {
        let num = |v: Option<f64>| v.map_or("null".to_string(), |n| format!("{n}"));
        format!(
            "{{\"section\": \"{}\", \"observed\": {}, \"floor\": {}, \"msg\": \"{}\"}}",
            escape(&self.section),
            num(self.observed),
            num(self.floor),
            escape(&self.msg)
        )
    }
}

/// The cells `consistency-ablate` must report, and the relational claims
/// over them: `(faster, slower, margin)` — `faster`'s `reads_per_s` must
/// exceed `slower`'s by at least `margin`×.
const CONSISTENCY_ROWS: [&str; 6] = [
    "linearizable/none",
    "replica-reads/none",
    "causal/none",
    "replica-reads/client_cache",
    "bounded-staleness/client_cache",
    "replica-reads/node_cache",
];
const CONSISTENCY_CLAIMS: [(&str, &str, f64); 2] = [
    ("replica-reads/none", "linearizable/none", 1.1),
    ("replica-reads/node_cache", "replica-reads/client_cache", 1.2),
];

/// The start tiers `coldstart` must report, and the latency claims over
/// them: `(slower, faster, margin)` — `slower`'s `mean_start_ms` must be
/// at least `margin`× `faster`'s.
const COLDSTART_MODES: [&str; 3] = ["classic", "snapshot", "fork"];
const COLDSTART_CLAIMS: [(&str, &str, f64); 2] =
    [("classic", "snapshot", 4.0), ("snapshot", "fork", 2.0)];

/// The checkpoint-cadence cells and durability levels `recovery` must
/// report. The claims: recovering from the WAL alone (`none`) must take
/// at least 1.2× as long as recovering atop a 500 ms checkpoint cadence,
/// a tight cadence must replay strictly fewer WAL bytes, and `async`
/// group commit must keep the mean write within 1.2× of no durability.
const RECOVERY_ROWS: [&str; 4] = ["none", "ckpt_2000ms", "ckpt_1000ms", "ckpt_500ms"];
const RECOVERY_LEVELS: [&str; 3] = ["none", "async", "sync"];
const RECOVERY_SPEEDUP: f64 = 1.2;
const ASYNC_OVERHEAD_CAP: f64 = 1.2;

/// Validates the document, dispatching on the `bench` field; returns
/// violations (empty = clean).
fn validate(doc: &Json) -> Vec<Violation> {
    match doc.get("bench").and_then(Json::as_str) {
        Some("kernel") => validate_kernel(doc),
        Some("consistency") => validate_consistency(doc),
        Some("coldstart") => validate_coldstart(doc),
        Some("recovery") => validate_recovery(doc),
        Some(other) => vec![Violation::doc(format!("unknown bench kind \"{other}\""))],
        None => vec![Violation::doc("top-level object lacks a `bench` string")],
    }
}

fn validate_kernel(doc: &Json) -> Vec<Violation> {
    let mut errs = Vec::new();
    let Some(Json::Arr(sections)) = doc.get("sections") else {
        errs.push(Violation::doc("top-level object lacks a `sections` array"));
        return errs;
    };
    for (name, floor) in FLOORS {
        let Some(sec) =
            sections.iter().find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            errs.push(Violation::section(name, "section missing"));
            continue;
        };
        for key in ["work", "events", "elapsed_s", "events_per_s"] {
            match sec.get(key).and_then(Json::as_num) {
                Some(v) if v > 0.0 => {}
                Some(v) => errs.push(Violation {
                    observed: Some(v),
                    ..Violation::section(name, format!("`{key}` must be positive, got {v}"))
                }),
                None => errs.push(Violation::section(name, format!("missing numeric `{key}`"))),
            }
        }
        if let Some(rate) = sec.get("events_per_s").and_then(Json::as_num) {
            if rate < floor {
                errs.push(Violation {
                    observed: Some(rate),
                    floor: Some(floor),
                    ..Violation::section(
                        name,
                        format!(
                            "events_per_s {rate:.0} is below the sanity floor {floor:.0} — \
                             kernel throughput regressed by an order of magnitude"
                        ),
                    )
                });
            }
        }
    }
    errs
}

fn validate_consistency(doc: &Json) -> Vec<Violation> {
    let mut errs = Vec::new();
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        errs.push(Violation::doc("top-level object lacks a `rows` array"));
        return errs;
    };
    let rate = |name: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|r| r.get("reads_per_s").and_then(Json::as_num))
    };
    for name in CONSISTENCY_ROWS {
        match rate(name) {
            Some(v) if v > 0.0 => {}
            Some(v) => errs.push(Violation {
                observed: Some(v),
                ..Violation::section(name, format!("`reads_per_s` must be positive, got {v}"))
            }),
            None => {
                errs.push(Violation::section(name, "row missing (or lacks numeric `reads_per_s`)"))
            }
        }
    }
    for (faster, slower, margin) in CONSISTENCY_CLAIMS {
        let (Some(f), Some(s)) = (rate(faster), rate(slower)) else {
            continue; // already reported as missing above
        };
        if f < s * margin {
            errs.push(Violation {
                observed: Some(f),
                floor: Some(s * margin),
                ..Violation::section(
                    faster,
                    format!(
                        "reads_per_s {f:.0} does not beat {slower} ({s:.0}) by the \
                         documented {margin}x margin — the ablation's claim regressed"
                    ),
                )
            });
        }
    }
    errs
}

fn validate_coldstart(doc: &Json) -> Vec<Violation> {
    let mut errs = Vec::new();
    let Some(Json::Arr(modes)) = doc.get("modes") else {
        errs.push(Violation::doc("top-level object lacks a `modes` array"));
        return errs;
    };
    let field = |mode: &str, key: &str| -> Option<f64> {
        modes
            .iter()
            .find(|m| m.get("name").and_then(Json::as_str) == Some(mode))
            .and_then(|m| m.get(key).and_then(Json::as_num))
    };
    for name in COLDSTART_MODES {
        match field(name, "mean_start_ms") {
            Some(v) if v > 0.0 => {}
            Some(v) => errs.push(Violation {
                observed: Some(v),
                ..Violation::section(name, format!("`mean_start_ms` must be positive, got {v}"))
            }),
            None => errs
                .push(Violation::section(name, "mode missing (or lacks numeric `mean_start_ms`)")),
        }
        match field(name, "starts") {
            Some(v) if v > 0.0 => {}
            Some(v) => errs.push(Violation {
                observed: Some(v),
                ..Violation::section(name, format!("`starts` must be positive, got {v}"))
            }),
            None => errs.push(Violation::section(name, "missing numeric `starts`")),
        }
    }
    for (slower, faster, margin) in COLDSTART_CLAIMS {
        let (Some(s), Some(f)) = (field(slower, "mean_start_ms"), field(faster, "mean_start_ms"))
        else {
            continue; // already reported as missing above
        };
        if f * margin > s {
            errs.push(Violation {
                observed: Some(f),
                floor: Some(s / margin),
                ..Violation::section(
                    faster,
                    format!(
                        "mean_start_ms {f:.1} does not undercut {slower} ({s:.1}) by the \
                         documented {margin}x margin — the cold-start tier's claim regressed"
                    ),
                )
            });
        }
    }
    errs
}

fn validate_recovery(doc: &Json) -> Vec<Violation> {
    let mut errs = Vec::new();
    let Some(Json::Arr(rows)) = doc.get("rows") else {
        errs.push(Violation::doc("top-level object lacks a `rows` array"));
        return errs;
    };
    let row = |name: &str, key: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|r| r.get(key).and_then(Json::as_num))
    };
    for name in RECOVERY_ROWS {
        match row(name, "recovery_ms") {
            Some(v) if v > 0.0 => {}
            Some(v) => errs.push(Violation {
                observed: Some(v),
                ..Violation::section(name, format!("`recovery_ms` must be positive, got {v}"))
            }),
            None => {
                errs.push(Violation::section(name, "row missing (or lacks numeric `recovery_ms`)"))
            }
        }
        match row(name, "objects") {
            Some(v) if v > 0.0 => {}
            Some(v) => errs.push(Violation {
                observed: Some(v),
                ..Violation::section(
                    name,
                    format!("`objects` must be positive, got {v} — recovery lost state"),
                )
            }),
            None => errs.push(Violation::section(name, "missing numeric `objects`")),
        }
    }
    if let (Some(none), Some(ckpt)) = (row("none", "recovery_ms"), row("ckpt_500ms", "recovery_ms"))
    {
        if none < ckpt * RECOVERY_SPEEDUP {
            errs.push(Violation {
                observed: Some(none),
                floor: Some(ckpt * RECOVERY_SPEEDUP),
                ..Violation::section(
                    "none",
                    format!(
                        "recovery_ms {none:.0} is not at least {RECOVERY_SPEEDUP}x \
                         ckpt_500ms ({ckpt:.0}) — checkpoints stopped buying down recovery"
                    ),
                )
            });
        }
    }
    if let (Some(none), Some(ckpt)) =
        (row("none", "replayed_bytes"), row("ckpt_500ms", "replayed_bytes"))
    {
        if ckpt >= none {
            errs.push(Violation {
                observed: Some(ckpt),
                floor: Some(none),
                ..Violation::section(
                    "ckpt_500ms",
                    format!(
                        "replayed_bytes {ckpt:.0} is not below none ({none:.0}) — \
                         checkpoint GC stopped truncating the WAL"
                    ),
                )
            });
        }
    }
    let Some(Json::Arr(overhead)) = doc.get("overhead") else {
        errs.push(Violation::doc("top-level object lacks an `overhead` array"));
        return errs;
    };
    let level = |name: &str, key: &str| -> Option<f64> {
        overhead
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|r| r.get(key).and_then(Json::as_num))
    };
    for name in RECOVERY_LEVELS {
        for key in ["mean_write_ms", "writes"] {
            match level(name, key) {
                Some(v) if v > 0.0 => {}
                Some(v) => errs.push(Violation {
                    observed: Some(v),
                    ..Violation::section(
                        name,
                        format!("overhead `{key}` must be positive, got {v}"),
                    )
                }),
                None => errs
                    .push(Violation::section(name, format!("overhead row lacks numeric `{key}`"))),
            }
        }
    }
    if let (Some(none), Some(async_)) =
        (level("none", "mean_write_ms"), level("async", "mean_write_ms"))
    {
        if async_ > none * ASYNC_OVERHEAD_CAP {
            errs.push(Violation {
                observed: Some(async_),
                floor: Some(none * ASYNC_OVERHEAD_CAP),
                ..Violation::section(
                    "async",
                    format!(
                        "mean_write_ms {async_:.3} exceeds {ASYNC_OVERHEAD_CAP}x the \
                         no-durability mean ({none:.3}) — async logging leaked onto \
                         the write path"
                    ),
                )
            });
        }
    }
    errs
}

/// Prints the violations in the selected format and returns the exit
/// code. With `--json` even read/parse failures come out as a one-element
/// violation array, so a consumer can always parse stdout.
fn report(path: &str, errs: &[Violation], json: bool) -> ExitCode {
    if json {
        let body = errs.iter().map(Violation::json).collect::<Vec<_>>().join(",\n  ");
        if errs.is_empty() {
            println!("[]");
        } else {
            println!("[\n  {body}\n]");
        }
    } else {
        for e in errs {
            println!("{path}: {}", e.human());
        }
        if errs.is_empty() {
            println!("benchcheck: {path}: clean");
        } else {
            println!("benchcheck: {path}: {} violation(s)", errs.len());
        }
    }
    if errs.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        eprintln!("usage: benchcheck [--json] <BENCH_kernel.json>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            return report(&path, &[Violation::doc(format!("cannot read {path}: {e}"))], json);
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            return report(&path, &[Violation::doc(format!("malformed JSON: {e}"))], json);
        }
    };
    report(&path, &validate(&doc), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rate: f64) -> String {
        let sections = FLOORS
            .iter()
            .map(|(name, _)| {
                format!(
                    "{{\"name\": \"{name}\", \"work\": 1000, \"work_unit\": \"x\", \
                     \"events\": 1000, \"elapsed_s\": 0.001, \"events_per_s\": {rate}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"bench\": \"kernel\", \"scale\": \"quick\", \"sections\": [{sections}]}}")
    }

    #[test]
    fn accepts_a_healthy_report() {
        let errs = validate(&parse(&doc(50_000_000.0)).unwrap());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_a_throughput_collapse() {
        let errs = validate(&parse(&doc(10.0)).unwrap());
        assert_eq!(errs.len(), FLOORS.len(), "{:?}", humans(&errs));
        assert!(errs[0].msg.contains("below the sanity floor"));
        // Floor violations carry the numbers, not just prose.
        assert_eq!(errs[0].section, "wheel_raw");
        assert_eq!(errs[0].observed, Some(10.0));
        assert_eq!(errs[0].floor, Some(2_000_000.0));
    }

    #[test]
    fn rejects_missing_sections_and_fields() {
        let errs = validate(&parse("{\"bench\": \"kernel\", \"sections\": []}").unwrap());
        assert_eq!(errs.len(), FLOORS.len());
        let src = "{\"bench\": \"elastic\", \"sections\": [{\"name\": \"wheel_raw\", \
                    \"events_per_s\": 1e9}]}";
        let errs = validate(&parse(src).unwrap());
        assert!(
            errs.iter().any(|e| e.msg.contains("unknown bench kind \"elastic\"")),
            "{:?}",
            humans(&errs)
        );
        let src = "{\"bench\": \"kernel\", \"sections\": [{\"name\": \"wheel_raw\", \
                    \"events_per_s\": 1e9}]}";
        let errs = validate(&parse(src).unwrap());
        assert!(
            errs.iter()
                .any(|e| e.section == "wheel_raw" && e.msg.contains("missing numeric `work`")),
            "{:?}",
            humans(&errs)
        );
    }

    /// A consistency report with every required row, `node` and `client`
    /// setting the two cache-tier rates (the rest fixed and healthy).
    fn consistency_doc(node: f64, client: f64) -> String {
        let rate = |name: &str| match name {
            "replica-reads/node_cache" => node,
            "replica-reads/client_cache" => client,
            "linearizable/none" => 30_000.0,
            _ => 40_000.0,
        };
        let rows = CONSISTENCY_ROWS
            .iter()
            .map(|name| {
                format!(
                    "{{\"name\": \"{name}\", \"mode\": \"x\", \"cache\": \"x\", \
                     \"reads_per_s\": {}, \"mean_read_latency_s\": 0.0001}}",
                    rate(name)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"bench\": \"consistency\", \"scale\": \"quick\", \"rows\": [{rows}]}}")
    }

    #[test]
    fn accepts_a_healthy_consistency_report() {
        let errs = validate(&parse(&consistency_doc(700_000.0, 120_000.0)).unwrap());
        assert!(errs.is_empty(), "{:?}", humans(&errs));
    }

    #[test]
    fn rejects_a_node_cache_that_stopped_beating_the_client_cache() {
        let errs = validate(&parse(&consistency_doc(120_000.0, 120_000.0)).unwrap());
        assert_eq!(errs.len(), 1, "{:?}", humans(&errs));
        assert_eq!(errs[0].section, "replica-reads/node_cache");
        assert!(errs[0].msg.contains("does not beat replica-reads/client_cache"));
        assert_eq!(errs[0].observed, Some(120_000.0));
        assert_eq!(errs[0].floor, Some(120_000.0 * 1.2));
    }

    #[test]
    fn rejects_missing_or_stalled_consistency_rows() {
        let errs = validate(&parse("{\"bench\": \"consistency\", \"rows\": []}").unwrap());
        assert_eq!(errs.len(), CONSISTENCY_ROWS.len(), "{:?}", humans(&errs));
        assert!(errs[0].msg.contains("row missing"));
        let doc = consistency_doc(700_000.0, 0.0);
        let errs = validate(&parse(&doc).unwrap());
        assert!(
            errs.iter()
                .any(|e| e.section == "replica-reads/client_cache"
                    && e.msg.contains("must be positive")),
            "{:?}",
            humans(&errs)
        );
    }

    fn humans(errs: &[Violation]) -> Vec<String> {
        errs.iter().map(Violation::human).collect()
    }

    /// A coldstart report with all three tiers at the given means.
    fn coldstart_doc(classic: f64, snapshot: f64, fork: f64) -> String {
        let mean = |name: &str| match name {
            "classic" => classic,
            "snapshot" => snapshot,
            _ => fork,
        };
        let modes = COLDSTART_MODES
            .iter()
            .map(|name| {
                format!(
                    "{{\"name\": \"{name}\", \"starts\": 48, \"mean_start_ms\": {}, \
                     \"p50_ms\": 1.0, \"p90_ms\": 2.0, \"p99_ms\": 3.0, \"cdf_ms\": [1.0], \
                     \"gb_seconds\": 10.0, \"idle_gb_seconds\": 0.0, \
                     \"snapshot_gb_seconds\": 0.0, \"faas_cost_usd\": 0.01}}",
                    mean(name)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"bench\": \"coldstart\", \"phase_secs\": 15, \"modes\": [{modes}]}}")
    }

    #[test]
    fn accepts_a_healthy_coldstart_report() {
        let errs = validate(&parse(&coldstart_doc(1500.0, 210.0, 25.0)).unwrap());
        assert!(errs.is_empty(), "{:?}", humans(&errs));
    }

    #[test]
    fn rejects_a_restore_that_stopped_collapsing_the_cold_start() {
        let errs = validate(&parse(&coldstart_doc(1500.0, 600.0, 25.0)).unwrap());
        assert_eq!(errs.len(), 1, "{:?}", humans(&errs));
        assert_eq!(errs[0].section, "snapshot");
        assert!(errs[0].msg.contains("does not undercut classic"));
        assert_eq!(errs[0].observed, Some(600.0));
        assert_eq!(errs[0].floor, Some(1500.0 / 4.0));
    }

    #[test]
    fn rejects_a_fork_that_stopped_undercutting_the_restore() {
        let errs = validate(&parse(&coldstart_doc(1500.0, 210.0, 150.0)).unwrap());
        assert_eq!(errs.len(), 1, "{:?}", humans(&errs));
        assert_eq!(errs[0].section, "fork");
        assert!(errs[0].msg.contains("does not undercut snapshot"));
    }

    #[test]
    fn rejects_missing_or_stalled_coldstart_modes() {
        let errs = validate(&parse("{\"bench\": \"coldstart\", \"modes\": []}").unwrap());
        assert_eq!(errs.len(), COLDSTART_MODES.len() * 2, "{:?}", humans(&errs));
        assert!(errs[0].msg.contains("mode missing"));
        let errs = validate(&parse(&coldstart_doc(1500.0, 0.0, 25.0)).unwrap());
        assert!(
            errs.iter().any(|e| e.section == "snapshot" && e.msg.contains("must be positive")),
            "{:?}",
            humans(&errs)
        );
    }

    /// A recovery report with the `none` and `ckpt_500ms` recovery times
    /// and the async mean write latency as knobs (the rest healthy).
    fn recovery_doc(none_ms: f64, ckpt500_ms: f64, async_write_ms: f64) -> String {
        let rows = RECOVERY_ROWS
            .iter()
            .map(|name| {
                let (ms, bytes) = match *name {
                    "none" => (none_ms, 50_000),
                    "ckpt_500ms" => (ckpt500_ms, 13_000),
                    _ => (5_000.0, 26_000),
                };
                format!(
                    "{{\"name\": \"{name}\", \"checkpoint_ms\": 500, \"recovery_ms\": {ms}, \
                     \"replayed_bytes\": {bytes}, \"wal_segments\": 100, \"objects\": 16}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let overhead = RECOVERY_LEVELS
            .iter()
            .map(|name| {
                let ms = match *name {
                    "async" => async_write_ms,
                    "sync" => 55.0,
                    _ => 0.4,
                };
                format!("{{\"name\": \"{name}\", \"mean_write_ms\": {ms}, \"writes\": 1000}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"bench\": \"recovery\", \"scale\": \"quick\", \"rows\": [{rows}], \
             \"overhead\": [{overhead}]}}"
        )
    }

    #[test]
    fn accepts_a_healthy_recovery_report() {
        let errs = validate(&parse(&recovery_doc(8_600.0, 3_500.0, 0.41)).unwrap());
        assert!(errs.is_empty(), "{:?}", humans(&errs));
    }

    #[test]
    fn rejects_checkpoints_that_stopped_buying_down_recovery() {
        let errs = validate(&parse(&recovery_doc(3_600.0, 3_500.0, 0.41)).unwrap());
        assert_eq!(errs.len(), 1, "{:?}", humans(&errs));
        assert_eq!(errs[0].section, "none");
        assert!(errs[0].msg.contains("checkpoints stopped buying down recovery"));
        assert_eq!(errs[0].observed, Some(3_600.0));
        assert_eq!(errs[0].floor, Some(3_500.0 * RECOVERY_SPEEDUP));
    }

    #[test]
    fn rejects_async_logging_that_leaked_onto_the_write_path() {
        let errs = validate(&parse(&recovery_doc(8_600.0, 3_500.0, 5.0)).unwrap());
        assert_eq!(errs.len(), 1, "{:?}", humans(&errs));
        assert_eq!(errs[0].section, "async");
        assert!(errs[0].msg.contains("leaked onto"));
    }

    #[test]
    fn rejects_missing_or_lossy_recovery_rows() {
        let errs =
            validate(&parse("{\"bench\": \"recovery\", \"rows\": [], \"overhead\": []}").unwrap());
        assert_eq!(
            errs.len(),
            RECOVERY_ROWS.len() * 2 + RECOVERY_LEVELS.len() * 2,
            "{:?}",
            humans(&errs)
        );
        assert!(errs[0].msg.contains("row missing"));
        // A cadence row that came back with zero objects is lost state.
        let doc = recovery_doc(8_600.0, 3_500.0, 0.41)
            .replace("\"ckpt_500ms\", \"checkpoint_ms\": 500, \"recovery_ms\": 3500, \"replayed_bytes\": 13000, \"wal_segments\": 100, \"objects\": 16", "\"ckpt_500ms\", \"checkpoint_ms\": 500, \"recovery_ms\": 3500, \"replayed_bytes\": 13000, \"wal_segments\": 100, \"objects\": 0");
        let errs = validate(&parse(&doc).unwrap());
        assert!(
            errs.iter().any(|e| e.section == "ckpt_500ms" && e.msg.contains("lost state")),
            "{:?}",
            humans(&errs)
        );
    }

    #[test]
    fn json_output_is_parseable_and_structured() {
        let errs = validate(&parse(&doc(10.0)).unwrap());
        let body = errs.iter().map(Violation::json).collect::<Vec<_>>().join(",");
        let arr = parse(&format!("[{body}]")).expect("emitted JSON parses");
        let Json::Arr(items) = arr else { panic!("array expected") };
        assert_eq!(items.len(), FLOORS.len());
        let first = &items[0];
        assert_eq!(first.get("section").and_then(Json::as_str), Some("wheel_raw"));
        assert_eq!(first.get("observed").and_then(Json::as_num), Some(10.0));
        assert_eq!(first.get("floor").and_then(Json::as_num), Some(2_000_000.0));
        assert!(first.get("msg").and_then(Json::as_str).unwrap().contains("sanity floor"));
        // A doc-level violation nulls the inapplicable fields.
        let v = Violation::doc("malformed").json();
        let obj = parse(&v).unwrap();
        assert_eq!(obj.get("section").and_then(Json::as_str), Some(""));
        assert_eq!(obj.get("observed"), Some(&Json::Null));
    }
}
