//! CI gate: validates `BENCH_kernel.json` written by `experiments
//! kernel-bench`.
//!
//! Usage: `cargo run -p simcheck --bin benchcheck -- BENCH_kernel.json`
//!
//! Checks, with the shared parser in [`simcheck::json`]:
//!
//! * the file is well-formed JSON with `"bench": "kernel"` and a
//!   `sections` array,
//! * every expected section is present, with positive `work`, `events`,
//!   `elapsed_s`, and `events_per_s` fields,
//! * each section's `events_per_s` clears a hard sanity floor, set at
//!   roughly 1/10 of a typical release-build run so host noise cannot
//!   flake the gate but an order-of-magnitude kernel regression (a
//!   reintroduced hot-path allocation, an accidental O(n) queue scan)
//!   fails CI.
//!
//! Exits non-zero listing each violation.

use std::process::ExitCode;

use simcheck::json::{parse, Json};

/// (section name, minimum events/sec) — the sanity floors.
///
/// Reference numbers from a release build of this workspace's container:
/// wheel_raw ~30M events/s (pure data structure), timer_churn and
/// ping_ring ~150-400k events/s (each event wakes an OS thread, so these
/// are context-switch bound), dso_smoke in the same range with many
/// events per object op. Floors sit an order of magnitude below.
const FLOORS: [(&str, f64); 4] = [
    ("wheel_raw", 2_000_000.0),
    ("timer_churn", 15_000.0),
    ("ping_ring", 15_000.0),
    ("dso_smoke", 15_000.0),
];

/// Validates the document; returns violations (empty = clean).
fn validate(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("bench").and_then(Json::as_str) != Some("kernel") {
        errs.push("top-level `bench` is not \"kernel\"".to_string());
    }
    let Some(Json::Arr(sections)) = doc.get("sections") else {
        errs.push("top-level object lacks a `sections` array".to_string());
        return errs;
    };
    for (name, floor) in FLOORS {
        let Some(sec) =
            sections.iter().find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            errs.push(format!("section `{name}` missing"));
            continue;
        };
        for key in ["work", "events", "elapsed_s", "events_per_s"] {
            match sec.get(key).and_then(Json::as_num) {
                Some(v) if v > 0.0 => {}
                Some(v) => errs.push(format!("{name}: `{key}` must be positive, got {v}")),
                None => errs.push(format!("{name}: missing numeric `{key}`")),
            }
        }
        if let Some(rate) = sec.get("events_per_s").and_then(Json::as_num) {
            if rate < floor {
                errs.push(format!(
                    "{name}: events_per_s {rate:.0} is below the sanity floor {floor:.0} — \
                     kernel throughput regressed by an order of magnitude"
                ));
            }
        }
    }
    errs
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: benchcheck <BENCH_kernel.json>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("benchcheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("benchcheck: {path}: malformed JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = validate(&doc);
    for e in &errs {
        println!("{path}: {e}");
    }
    if errs.is_empty() {
        println!("benchcheck: {path}: clean ({} sections)", FLOORS.len());
        ExitCode::SUCCESS
    } else {
        println!("benchcheck: {path}: {} violation(s)", errs.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rate: f64) -> String {
        let sections = FLOORS
            .iter()
            .map(|(name, _)| {
                format!(
                    "{{\"name\": \"{name}\", \"work\": 1000, \"work_unit\": \"x\", \
                     \"events\": 1000, \"elapsed_s\": 0.001, \"events_per_s\": {rate}}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"bench\": \"kernel\", \"scale\": \"quick\", \"sections\": [{sections}]}}")
    }

    #[test]
    fn accepts_a_healthy_report() {
        let errs = validate(&parse(&doc(50_000_000.0)).unwrap());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_a_throughput_collapse() {
        let errs = validate(&parse(&doc(10.0)).unwrap());
        assert_eq!(errs.len(), FLOORS.len(), "{errs:?}");
        assert!(errs[0].contains("below the sanity floor"));
    }

    #[test]
    fn rejects_missing_sections_and_fields() {
        let errs = validate(&parse("{\"bench\": \"kernel\", \"sections\": []}").unwrap());
        assert_eq!(errs.len(), FLOORS.len());
        let src = "{\"bench\": \"elastic\", \"sections\": [{\"name\": \"wheel_raw\", \
                    \"events_per_s\": 1e9}]}";
        let errs = validate(&parse(src).unwrap());
        assert!(errs.iter().any(|e| e.contains("not \"kernel\"")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("missing numeric `work`")), "{errs:?}");
    }
}
