//! CI gate: runs the interprocedural determinism/purity/wait analyses
//! (`simcheck::analyze`) over every `.rs` file under `crates/`. Exits
//! non-zero when any finding survives.
//!
//! Usage:
//! `cargo run -p simcheck --bin simanalyze [-- [--json] [--readonly-report PATH] [<root>]]`
//!
//! - `--json` prints findings as a JSON array (`file`, `line`, `rule`,
//!   `msg`) instead of human-readable lines, for machine-parseable CI
//!   logs.
//! - `--readonly-report PATH` writes the proven-pure readonly method
//!   report (one `Type method` per line); the DSO runtime loads it via
//!   `DsoConfig::pure_methods` to skip snapshot verification for proven
//!   methods.
//! - `<root>` defaults to the workspace root (the current directory if
//!   it contains `crates/`, otherwise two levels above this crate's
//!   manifest).

use std::path::PathBuf;
use std::process::ExitCode;

use simcheck::json::escape as esc;

struct Args {
    json: bool,
    report: Option<PathBuf>,
    root: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut json = false;
    let mut report = None;
    let mut root = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => json = true,
            "--readonly-report" => {
                let p = argv.next().ok_or("--readonly-report needs a path")?;
                report = Some(PathBuf::from(p));
            }
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ => root = Some(PathBuf::from(a)),
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });
    Ok(Args { json, report, root })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simanalyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = args.root.join("crates");
    let analysis = match simcheck::analyze::analyze_tree(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simanalyze: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.report {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, analysis.pure.to_text()) {
            eprintln!("simanalyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.json {
        let items: Vec<String> = analysis
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"msg\":\"{}\"}}",
                    esc(&f.file),
                    f.line,
                    f.rule,
                    esc(&f.msg)
                )
            })
            .collect();
        println!("[{}]", items.join(","));
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
    }
    if analysis.findings.is_empty() {
        if !args.json {
            println!(
                "simanalyze: clean ({} proven-pure readonly methods)",
                analysis.pure.entries.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !args.json {
            println!("simanalyze: {} finding(s)", analysis.findings.len());
        }
        ExitCode::FAILURE
    }
}
