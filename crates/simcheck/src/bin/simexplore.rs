//! CI gate: replays a DSO cluster smoke workload under N perturbed
//! schedules ([`simcore::explore::explore_seeds`]) and checks every
//! schedule's operation history for linearizability.
//!
//! Usage: `cargo run -p simcheck --bin simexplore [-- --seeds N] [--base B]`
//! Exits non-zero when any schedule deadlocks, panics or fails the
//! linearizability check; the report carries the reproducing seed.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::explore::{explore_seeds, Check};
use simcore::Sim;

use dso::verify::{check_counter_with_reads, Op};
use dso::{api, DsoCluster, DsoConfig, ObjectRegistry};

const WRITERS: usize = 4;
const OPS: usize = 5;
const READERS: usize = 2;
const READS: usize = 4;

/// The smoke scenario: a 2-node cluster, concurrent unit increments plus
/// read-fast-path gets on one shared counter, full histories recorded.
fn smoke(sim: &mut Sim) -> Check {
    let cluster = DsoCluster::start(sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let incs: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    let reads: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    for w in 0..WRITERS {
        let handle = handle.clone();
        let incs = incs.clone();
        sim.spawn(&format!("writer-{w}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = api::AtomicLong::new("smoke-counter");
            for _ in 0..OPS {
                let start = ctx.now();
                let value = counter.increment_and_get(ctx, &mut cli).expect("cluster reachable");
                incs.lock().push(Op { start, end: ctx.now(), value });
            }
        });
    }
    for r in 0..READERS {
        let handle = handle.clone();
        let reads = reads.clone();
        sim.spawn(&format!("reader-{r}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = api::AtomicLong::new("smoke-counter");
            for _ in 0..READS {
                let start = ctx.now();
                let value = counter.get(ctx, &mut cli).expect("cluster reachable");
                reads.lock().push(Op { start, end: ctx.now(), value });
                ctx.sleep(Duration::from_micros(200));
            }
        });
    }
    Box::new(move || {
        let _keep = cluster; // servers must outlive the run
        let incs = incs.lock();
        let reads = reads.lock();
        if incs.len() != WRITERS * OPS {
            return Err(format!("only {}/{} increments completed", incs.len(), WRITERS * OPS));
        }
        if reads.len() != READERS * READS {
            return Err(format!("only {}/{} reads completed", reads.len(), READERS * READS));
        }
        check_counter_with_reads(&incs, &reads).map_err(|v| format!("not linearizable: {v}"))
    })
}

fn parse_args() -> (u64, u64) {
    let mut seeds = 25u64;
    let mut base = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = |v: Option<String>| v.and_then(|s| s.parse().ok());
        match a.as_str() {
            "--seeds" => seeds = value(args.next()).unwrap_or(seeds),
            "--base" => base = value(args.next()).unwrap_or(base),
            other => eprintln!("simexplore: ignoring unknown arg {other:?}"),
        }
    }
    (seeds, base)
}

fn main() -> ExitCode {
    let (seeds, base) = parse_args();
    let report = explore_seeds(base, seeds, smoke);
    println!("simexplore: {report}");
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
