//! CI gate: lints every `.rs` file under `crates/` for determinism and
//! robustness conventions. Exits non-zero when any finding survives.
//!
//! Usage: `cargo run -p simcheck --bin simlint [-- <root>]` — `<root>`
//! defaults to the workspace root (the current directory if it contains
//! `crates/`, otherwise two levels above this crate's manifest).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let root = workspace_root().join("crates");
    let findings = match simcheck::lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        println!("simlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
