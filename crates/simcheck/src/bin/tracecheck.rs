//! CI gate: schema-validates a Chrome trace-event JSON export produced by
//! `Tracer::export_chrome_json` (via `experiments trace-<app>`).
//!
//! Usage: `cargo run -p simcheck --bin tracecheck -- <trace.chrome.json>`
//!
//! Checks, with the shared hand-rolled parser in [`simcheck::json`] (the
//! workspace carries no JSON dependency):
//!
//! * the file is well-formed JSON: an object with a `traceEvents` array,
//! * every event has `name`/`ph`/`pid`/`tid`, non-metadata events a
//!   numeric `ts`, and `ph:"X"` events a numeric `dur`,
//! * span events carry `args.id`/`args.parent`, ids are unique and
//!   non-zero, and every non-zero parent resolves to a span in the file.
//!
//! Exits non-zero listing each violation, so a malformed export fails CI.

use std::collections::HashSet;
use std::process::ExitCode;

use simcheck::json::{parse, Json};

/// Validates one trace document; returns violations (empty = clean) plus
/// the number of span events checked.
fn validate(doc: &Json) -> (Vec<String>, usize) {
    let mut errs = Vec::new();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return (vec!["top-level object lacks a `traceEvents` array".to_string()], 0);
    };
    let mut ids = HashSet::new();
    let mut parents = Vec::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event #{i}: {msg}");
        if !matches!(ev, Json::Obj(_)) {
            errs.push(at("not an object"));
            continue;
        }
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default().to_string();
        for key in ["name", "ph"] {
            if ev.get(key).and_then(Json::as_str).is_none() {
                errs.push(at(&format!("missing string `{key}`")));
            }
        }
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_num).is_none() {
                errs.push(at(&format!("missing numeric `{key}`")));
            }
        }
        if ph == "M" {
            continue; // metadata events carry no timestamps or span ids
        }
        match ev.get("ts").and_then(Json::as_num) {
            Some(ts) if ts >= 0.0 => {}
            Some(_) => errs.push(at("negative `ts`")),
            None => errs.push(at("missing numeric `ts`")),
        }
        if ph == "X" {
            match ev.get("dur").and_then(Json::as_num) {
                Some(dur) if dur >= 0.0 => {}
                Some(_) => errs.push(at("negative `dur`")),
                None => errs.push(at("complete event (ph:\"X\") missing numeric `dur`")),
            }
        }
        spans += 1;
        let args = ev.get("args");
        let id = args.and_then(|a| a.get("id")).and_then(Json::as_num);
        let parent = args.and_then(|a| a.get("parent")).and_then(Json::as_num);
        match id {
            Some(id) if id > 0.0 => {
                if !ids.insert(id as u64) {
                    errs.push(at(&format!("duplicate span id {id}")));
                }
            }
            Some(_) => errs.push(at("span id must be positive")),
            None => errs.push(at("missing numeric `args.id`")),
        }
        match parent {
            Some(p) => parents.push((i, p as u64)),
            None => errs.push(at("missing numeric `args.parent`")),
        }
    }
    for (i, p) in parents {
        if p != 0 && !ids.contains(&p) {
            errs.push(format!("event #{i}: parent span {p} not found in this trace"));
        }
    }
    (errs, spans)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck <trace.chrome.json>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tracecheck: {path}: malformed JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (errs, spans) = validate(&doc);
    for e in &errs {
        println!("{path}: {e}");
    }
    if errs.is_empty() {
        println!("tracecheck: {path}: clean ({spans} span events)");
        ExitCode::SUCCESS
    } else {
        println!("tracecheck: {path}: {} violation(s)", errs.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_export() {
        let src = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"client"}},
            {"name":"dso.call","cat":"dso","ph":"X","ts":1000,"dur":2.500,"pid":1,"tid":3,"args":{"id":1,"parent":0}},
            {"name":"dso.exec","cat":"dso","ph":"X","ts":1001,"dur":1,"pid":1,"tid":4,"args":{"id":2,"parent":1}},
            {"name":"dso.view_change","cat":"dso","ph":"i","s":"t","ts":5,"pid":1,"tid":0,"args":{"id":3,"parent":0}}
        ]}"#;
        let (errs, spans) = validate(&parse(src).unwrap());
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(spans, 3);
    }

    #[test]
    fn rejects_schema_violations() {
        // Missing dur on an X event, dangling parent, duplicate id.
        let src = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":1,"pid":1,"tid":1,"args":{"id":1,"parent":9}},
            {"name":"b","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"id":1,"parent":0}}
        ]}"#;
        let (errs, _) = validate(&parse(src).unwrap());
        assert!(errs.iter().any(|e| e.contains("missing numeric `dur`")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("parent span 9")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("duplicate span id")), "{errs:?}");
        let (errs, _) = validate(&parse("{\"other\":1}").unwrap());
        assert!(errs[0].contains("traceEvents"));
    }
}
