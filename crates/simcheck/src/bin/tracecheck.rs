//! CI gate: schema-validates a Chrome trace-event JSON export produced by
//! `Tracer::export_chrome_json` (via `experiments trace-<app>`).
//!
//! Usage: `cargo run -p simcheck --bin tracecheck -- <trace.chrome.json>`
//!
//! Checks, with a hand-rolled JSON parser (the workspace carries no JSON
//! dependency):
//!
//! * the file is well-formed JSON: an object with a `traceEvents` array,
//! * every event has `name`/`ph`/`pid`/`tid`, non-metadata events a
//!   numeric `ts`, and `ph:"X"` events a numeric `dur`,
//! * span events carry `args.id`/`args.parent`, ids are unique and
//!   non-zero, and every non-zero parent resolves to a span in the file.
//!
//! Exits non-zero listing each violation, so a malformed export fails CI.

use std::collections::HashSet;
use std::process::ExitCode;

/// A parsed JSON value. Just enough of the data model for trace exports.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; trace timestamps fit f64 exactly up to 2^53 ns.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser { b: src.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).map_err(|_| self.err("utf8"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice. Byte-wise scanning is UTF-8-safe: the
                    // bytes of a multi-byte character never collide with
                    // ASCII '"' or '\\'. Validating per consumed character
                    // instead was quadratic in the document size.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|_| self.err("invalid utf8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

/// Validates one trace document; returns violations (empty = clean) plus
/// the number of span events checked.
fn validate(doc: &Json) -> (Vec<String>, usize) {
    let mut errs = Vec::new();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return (vec!["top-level object lacks a `traceEvents` array".to_string()], 0);
    };
    let mut ids = HashSet::new();
    let mut parents = Vec::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event #{i}: {msg}");
        if !matches!(ev, Json::Obj(_)) {
            errs.push(at("not an object"));
            continue;
        }
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default().to_string();
        for key in ["name", "ph"] {
            if ev.get(key).and_then(Json::as_str).is_none() {
                errs.push(at(&format!("missing string `{key}`")));
            }
        }
        for key in ["pid", "tid"] {
            if ev.get(key).and_then(Json::as_num).is_none() {
                errs.push(at(&format!("missing numeric `{key}`")));
            }
        }
        if ph == "M" {
            continue; // metadata events carry no timestamps or span ids
        }
        match ev.get("ts").and_then(Json::as_num) {
            Some(ts) if ts >= 0.0 => {}
            Some(_) => errs.push(at("negative `ts`")),
            None => errs.push(at("missing numeric `ts`")),
        }
        if ph == "X" {
            match ev.get("dur").and_then(Json::as_num) {
                Some(dur) if dur >= 0.0 => {}
                Some(_) => errs.push(at("negative `dur`")),
                None => errs.push(at("complete event (ph:\"X\") missing numeric `dur`")),
            }
        }
        spans += 1;
        let args = ev.get("args");
        let id = args.and_then(|a| a.get("id")).and_then(Json::as_num);
        let parent = args.and_then(|a| a.get("parent")).and_then(Json::as_num);
        match id {
            Some(id) if id > 0.0 => {
                if !ids.insert(id as u64) {
                    errs.push(at(&format!("duplicate span id {id}")));
                }
            }
            Some(_) => errs.push(at("span id must be positive")),
            None => errs.push(at("missing numeric `args.id`")),
        }
        match parent {
            Some(p) => parents.push((i, p as u64)),
            None => errs.push(at("missing numeric `args.parent`")),
        }
    }
    for (i, p) in parents {
        if p != 0 && !ids.contains(&p) {
            errs.push(format!("event #{i}: parent span {p} not found in this trace"));
        }
    }
    (errs, spans)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: tracecheck <trace.chrome.json>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tracecheck: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tracecheck: {path}: malformed JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (errs, spans) = validate(&doc);
    for e in &errs {
        println!("{path}: {e}");
    }
    if errs.is_empty() {
        println!("tracecheck: {path}: clean ({spans} span events)");
        ExitCode::SUCCESS
    } else {
        println!("tracecheck: {path}: {} violation(s)", errs.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"a\\\"b\\u0041\"").unwrap(), Json::Str("a\"bA".to_string()));
        let v = parse("{\"a\":[1,2],\"b\":{}}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert!(parse("{}, trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn accepts_a_real_export() {
        let src = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"client"}},
            {"name":"dso.call","cat":"dso","ph":"X","ts":1000,"dur":2.500,"pid":1,"tid":3,"args":{"id":1,"parent":0}},
            {"name":"dso.exec","cat":"dso","ph":"X","ts":1001,"dur":1,"pid":1,"tid":4,"args":{"id":2,"parent":1}},
            {"name":"dso.view_change","cat":"dso","ph":"i","s":"t","ts":5,"pid":1,"tid":0,"args":{"id":3,"parent":0}}
        ]}"#;
        let (errs, spans) = validate(&parse(src).unwrap());
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(spans, 3);
    }

    #[test]
    fn rejects_schema_violations() {
        // Missing dur on an X event, dangling parent, duplicate id.
        let src = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":1,"pid":1,"tid":1,"args":{"id":1,"parent":9}},
            {"name":"b","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"id":1,"parent":0}}
        ]}"#;
        let (errs, _) = validate(&parse(src).unwrap());
        assert!(errs.iter().any(|e| e.contains("missing numeric `dur`")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("parent span 9")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("duplicate span id")), "{errs:?}");
        let (errs, _) = validate(&parse("{\"other\":1}").unwrap());
        assert!(errs[0].contains("traceEvents"));
    }
}
