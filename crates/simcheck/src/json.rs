//! A minimal JSON data model and recursive-descent parser.
//!
//! The workspace carries no JSON dependency, but two CI gates need to
//! *read* JSON the benches and tracer write: `tracecheck` (Chrome trace
//! exports) and `benchcheck` (`BENCH_*.json` result files). Both share
//! this parser. It handles the full JSON grammar the exporters emit —
//! objects, arrays, strings with escapes (including UTF-16 surrogate
//! pairs), numbers as `f64` — and rejects trailing garbage, which is all
//! a checker needs. [`escape`] is the matching writer-side helper for the
//! gates that emit machine-readable findings.

/// A parsed JSON value. Just enough of the data model for the checkers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; trace timestamps fit f64 exactly up to 2^53 ns.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` if `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if `self` is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (without the
/// surrounding quotes). The inverse of what [`parse`] unescapes; used by
/// the gates that *emit* machine-readable findings (`benchcheck --json`,
/// `simanalyze --json`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting [`parse`] accepts. The recursive-descent
/// parser uses the host stack, so an adversarially deep `[[[[…` in a
/// checked artifact must hit a typed error before it hits a stack
/// overflow. Real trace/bench exports nest a handful of levels.
const MAX_DEPTH: usize = 512;

/// A recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser { b: src.as_bytes(), pos: 0, depth: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn nested(&mut self, f: fn(&mut Parser<'a>) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).map_err(|_| self.err("utf8"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice. Byte-wise scanning is UTF-8-safe: the
                    // bytes of a multi-byte character never collide with
                    // ASCII '"' or '\\'. Validating per consumed character
                    // instead was quadratic in the document size.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|_| self.err("invalid utf8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (the `\u` itself
    /// already consumed) and returns the code unit.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .b
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Decodes one `\uXXXX` escape, combining UTF-16 surrogate pairs:
    /// JSON spells astral-plane characters as `\uD8xx\uDCxx`. A lone or
    /// mismatched surrogate half decodes to U+FFFD (the artifact is still
    /// readable; the character is unrepresentable).
    fn unicode_escape(&mut self) -> Result<char, String> {
        let code = self.hex4()?;
        if !(0xD800..=0xDBFF).contains(&code) {
            return Ok(char::from_u32(code).unwrap_or('\u{fffd}'));
        }
        // High surrogate: try to pair it with an immediately following
        // `\uDCxx`. On a mismatched low half, rewind so the next escape
        // is decoded on its own.
        if self.b.get(self.pos..self.pos + 2) == Some(b"\\u".as_slice()) {
            let save = self.pos;
            self.pos += 2;
            let low = self.hex4()?;
            if (0xDC00..=0xDFFF).contains(&low) {
                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                return Ok(char::from_u32(c).unwrap_or('\u{fffd}'));
            }
            self.pos = save;
        }
        Ok('\u{fffd}')
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"a\\\"b\\u0041\"").unwrap(), Json::Str("a\"bA".to_string()));
        let v = parse("{\"a\":[1,2],\"b\":{}}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert!(parse("{}, trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn surrogate_pairs_combine() {
        // 😀 is U+1F600, spelled \uD83D\uDE00 in JSON.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".to_string()));
        // A lone high or low half is unrepresentable → U+FFFD.
        assert_eq!(parse("\"\\ud83d!\"").unwrap(), Json::Str("\u{fffd}!".to_string()));
        assert_eq!(parse("\"\\ude00\"").unwrap(), Json::Str("\u{fffd}".to_string()));
        // A high half followed by a non-surrogate escape: the second
        // escape still decodes on its own.
        assert_eq!(parse("\"\\ud83d\\u0041\"").unwrap(), Json::Str("\u{fffd}A".to_string()));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the limit: parses fine.
        let ok = format!("{}null{}", "[".repeat(400), "]".repeat(400));
        assert!(parse(&ok).is_ok());
        // Past the limit: a typed error, not a stack overflow.
        let deep = format!("{}null{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // Mixed object/array nesting counts the same way.
        let mixed = format!("{}null{}", "[{\"k\":".repeat(50_000), "}]".repeat(50_000));
        assert!(parse(&mixed).unwrap_err().contains("nesting deeper"));
    }

    #[test]
    fn boundary_numbers_round_trip_through_f64() {
        // 2^53 is the last contiguous exact integer in f64.
        assert_eq!(parse("9007199254740992").unwrap(), Json::Num(9007199254740992.0));
        assert_eq!(parse("-9007199254740992").unwrap(), Json::Num(-9007199254740992.0));
        // i64::MAX is representable only approximately; parsing must not
        // error, and rounds like any f64 conversion.
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Num(9223372036854775807i64 as f64));
        // f64 extremes: largest finite, smallest subnormal, and a clean
        // overflow to infinity (f64::from_str saturates; the data model
        // carries what f64 carries).
        assert_eq!(parse("1.7976931348623157e308").unwrap(), Json::Num(f64::MAX));
        assert_eq!(parse("5e-324").unwrap(), Json::Num(5e-324));
        assert_eq!(parse("1e400").unwrap(), Json::Num(f64::INFINITY));
        assert_eq!(parse("1e-400").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} emoji😀";
        let wrapped = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&wrapped).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse("{\"s\":\"x\",\"n\":3}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_num), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }
}
