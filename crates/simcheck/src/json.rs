//! A minimal JSON data model and recursive-descent parser.
//!
//! The workspace carries no JSON dependency, but two CI gates need to
//! *read* JSON the benches and tracer write: `tracecheck` (Chrome trace
//! exports) and `benchcheck` (`BENCH_*.json` result files). Both share
//! this parser. It handles the full JSON grammar the exporters emit —
//! objects, arrays, strings with escapes, numbers as `f64` — and rejects
//! trailing garbage, which is all a checker needs.

/// A parsed JSON value. Just enough of the data model for the checkers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; trace timestamps fit f64 exactly up to 2^53 ns.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` if `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if `self` is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser { b: src.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).map_err(|_| self.err("utf8"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice. Byte-wise scanning is UTF-8-safe: the
                    // bytes of a multi-byte character never collide with
                    // ASCII '"' or '\\'. Validating per consumed character
                    // instead was quadratic in the document size.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..self.pos])
                        .map_err(|_| self.err("invalid utf8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"a\\\"b\\u0041\"").unwrap(), Json::Str("a\"bA".to_string()));
        let v = parse("{\"a\":[1,2],\"b\":{}}").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])));
        assert!(parse("{}, trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse("{\"s\":\"x\",\"n\":3}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(3.0));
        assert_eq!(v.get("s").and_then(Json::as_num), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }
}
