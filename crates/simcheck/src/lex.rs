//! A hand-rolled Rust lexer: the token layer under `simlint` and
//! `simanalyze`.
//!
//! The workspace carries no external parser, so this module implements
//! just enough of the Rust lexical grammar to be *exact* about the
//! distinctions the analyses need: code vs. comment vs. literal, char
//! literal vs. lifetime, raw strings with hash guards, and nested block
//! comments. Everything downstream (the legacy line rules, the item
//! parser, the interprocedural passes) consumes these tokens instead of
//! regex-matching raw text, so an identifier inside a string literal or a
//! comment can never be mistaken for code again.
//!
//! The lexer is lossless over byte offsets: every token carries its
//! `[lo, hi)` span into the original source, and [`views`] can rebuild
//! the blanked code/comment projections the legacy rules match against,
//! preserving the exact byte length and line structure of the input.

/// Token classes. Keywords are ordinary [`TokKind::Ident`]s; multi-char
/// operators are adjacent [`TokKind::Punct`]s (check [`Tok::glued`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime or loop label, including the leading `'`.
    Lifetime,
    /// Integer or float literal, including suffix.
    Num,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`, `b'c'`.
    Str,
    /// One punctuation byte.
    Punct,
    /// A `//…` comment, without the trailing newline.
    LineComment,
    /// A `/* … */` comment (nested blocks included), with delimiters.
    BlockComment,
}

/// One token: kind plus byte span and 1-based starting line.
#[derive(Copy, Clone, Debug)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based line of `lo`.
    pub line: u32,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }

    /// Whether this token is the single punctuation byte `c`.
    pub fn is_punct(&self, src: &str, c: u8) -> bool {
        self.kind == TokKind::Punct && src.as_bytes()[self.lo] == c
    }

    /// Whether `next` follows this token with no gap (multi-char operator
    /// detection: `::`, `=>`, `->`, `..`).
    pub fn glued(&self, next: &Tok) -> bool {
        self.hi == next.lo
    }

    /// For [`TokKind::Str`] tokens: the literal's inner content, with the
    /// quotes, raw-string hash guards and `b`/`r` prefixes stripped (but
    /// escapes left undecoded — method-name literals never contain any).
    pub fn str_content<'a>(&self, src: &'a str) -> &'a str {
        let t = self.text(src);
        let t = t.trim_start_matches(['b', 'r']);
        let t = t.trim_matches('#');
        t.trim_matches(['"', '\''])
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn bump_line_counter(&mut self, lo: usize, hi: usize) {
        self.line += self.b[lo..hi].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    fn push(&mut self, kind: TokKind, lo: usize) {
        let line = self.line;
        self.bump_line_counter(lo, self.pos);
        self.out.push(Tok { kind, lo, hi: self.pos, line });
    }

    /// Consumes a `"…"` body starting *after* the opening quote.
    fn string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            match c {
                b'"' => return,
                b'\\'
                    // Skip the escaped byte ('\"', '\\', '\n' line-join…).
                    if self.peek(0).is_some() => {
                        self.pos += 1;
                    }
                _ => {}
            }
        }
    }

    /// Consumes a raw string body after `r##…"`, guarded by `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            if c == b'"' {
                let close = (0..hashes).all(|k| self.peek(k) == Some(b'#'));
                if close {
                    self.pos += hashes;
                    return;
                }
            }
        }
    }

    /// Consumes a `'…'` char-literal body after the opening quote.
    fn char_body(&mut self) {
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            match c {
                b'\'' => return,
                b'\\' if self.peek(0).is_some() => {
                    self.pos += 1;
                }
                _ => {}
            }
        }
    }

    /// At a `'`: char literal or lifetime? A char literal either starts
    /// with an escape or closes right after one (possibly multi-byte)
    /// character; anything else is a lifetime or loop label.
    fn quote(&mut self) {
        let lo = self.pos;
        self.pos += 1; // the '
        match self.peek(0) {
            Some(b'\\') => {
                self.char_body();
                self.push(TokKind::Str, lo);
            }
            Some(c) => {
                // Width of the first content character (UTF-8).
                let w = match c {
                    _ if c < 0x80 => 1,
                    _ if c >= 0xf0 => 4,
                    _ if c >= 0xe0 => 3,
                    _ => 2,
                };
                if self.peek(w) == Some(b'\'') {
                    self.pos += w + 1;
                    self.push(TokKind::Str, lo);
                } else {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    self.push(TokKind::Lifetime, lo);
                }
            }
            None => self.push(TokKind::Punct, lo),
        }
    }

    /// At an ident start: plain identifier, or one of the literal prefixes
    /// (`r"`, `r#"`, `br"`, `b"`, `b'`) or a raw identifier (`r#name`).
    fn ident_or_prefixed(&mut self) {
        let lo = self.pos;
        let rest = &self.b[self.pos..];
        // Raw-string prefixes: r / br followed by #* then a quote.
        for pre in [&b"r"[..], &b"br"[..]] {
            if rest.starts_with(pre) {
                let mut h = 0;
                while rest.get(pre.len() + h) == Some(&b'#') {
                    h += 1;
                }
                if rest.get(pre.len() + h) == Some(&b'"') {
                    self.pos += pre.len() + h + 1;
                    self.raw_string_body(h);
                    self.push(TokKind::Str, lo);
                    return;
                }
            }
        }
        if rest.starts_with(b"b\"") {
            self.pos += 2;
            self.string_body();
            self.push(TokKind::Str, lo);
            return;
        }
        if rest.starts_with(b"b'") {
            self.pos += 2;
            self.char_body();
            self.push(TokKind::Str, lo);
            return;
        }
        if rest.starts_with(b"r#") && rest.get(2).copied().is_some_and(is_ident_start) {
            self.pos += 2; // raw identifier: consume r# then the name
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokKind::Ident, lo);
    }

    /// At an ASCII digit: integer or float literal, suffix included.
    fn number(&mut self) {
        let lo = self.pos;
        let hex = self.b[self.pos..].starts_with(b"0x") || self.b[self.pos..].starts_with(b"0X");
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && !self.b[lo..self.pos].contains(&b'.')
            {
                // `1.5` yes; `1..5` (range) and `1.method()` no.
                self.pos += 1;
            } else if (c == b'+' || c == b'-')
                && !hex
                && matches!(self.b[self.pos - 1], b'e' | b'E')
            {
                self.pos += 1; // exponent sign in 1e-3
            } else {
                break;
            }
        }
        self.push(TokKind::Num, lo);
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    let lo = self.pos;
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.pos += 1;
                    }
                    self.push(TokKind::LineComment, lo);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let lo = self.pos;
                    self.pos += 2;
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => break,
                        }
                    }
                    self.push(TokKind::BlockComment, lo);
                }
                b'"' => {
                    let lo = self.pos;
                    self.pos += 1;
                    self.string_body();
                    self.push(TokKind::Str, lo);
                }
                b'\'' => self.quote(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed(),
                _ => {
                    let lo = self.pos;
                    self.pos += 1;
                    self.push(TokKind::Punct, lo);
                }
            }
        }
        self.out
    }
}

/// Lexes a source file. Never fails: unterminated literals and comments
/// extend to end of input, unknown bytes become punctuation.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { b: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

/// The three blanked projections of a source file the legacy line rules
/// match against. All have exactly the original's byte length and line
/// structure, so offsets are interchangeable.
pub struct Views {
    /// Comments and literal *contents* blanked (literal delimiters kept so
    /// brace matching and quote positions survive).
    pub code: String,
    /// Only comments blanked; literals kept verbatim.
    pub no_comments: String,
    /// Everything *except* comments blanked.
    pub comments: String,
}

/// Rebuilds the blanked views from the token stream.
pub fn views(src: &str, toks: &[Tok]) -> Views {
    let base: Vec<u8> = src.bytes().map(|c| if c == b'\n' { b'\n' } else { b' ' }).collect();
    let mut code = base.clone();
    let mut noc = base.clone();
    let mut com = base;
    let b = src.as_bytes();
    for t in toks {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                com[t.lo..t.hi].copy_from_slice(&b[t.lo..t.hi]);
            }
            TokKind::Str => {
                noc[t.lo..t.hi].copy_from_slice(&b[t.lo..t.hi]);
                // Keep only the delimiters in the code view. First and
                // last bytes are always ASCII (quote, prefix letter, #).
                code[t.lo] = b[t.lo];
                code[t.hi - 1] = b[t.hi - 1];
            }
            _ => {
                code[t.lo..t.hi].copy_from_slice(&b[t.lo..t.hi]);
                noc[t.lo..t.hi].copy_from_slice(&b[t.lo..t.hi]);
            }
        }
    }
    // invariant: only whole tokens (char-boundary aligned) or single ASCII
    // bytes were copied over the space-filled base, so all three buffers
    // remain valid UTF-8.
    Views {
        code: String::from_utf8(code).expect("views preserve UTF-8"),
        no_comments: String::from_utf8(noc).expect("views preserve UTF-8"),
        comments: String::from_utf8(com).expect("views preserve UTF-8"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let got = kinds("let x = 42u64 + 0x1f; f(1.5e-3)");
        assert!(got.contains(&(TokKind::Num, "42u64".into())));
        assert!(got.contains(&(TokKind::Num, "0x1f".into())));
        assert!(got.contains(&(TokKind::Num, "1.5e-3".into())));
        assert!(got.contains(&(TokKind::Ident, "let".into())));
    }

    #[test]
    fn ranges_are_not_floats() {
        let got = kinds("for i in 1..20 { x.0.abs() }");
        assert!(got.contains(&(TokKind::Num, "1".into())));
        assert!(got.contains(&(TokKind::Num, "20".into())));
        assert!(got.contains(&(TokKind::Num, "0".into())), "{got:?}");
    }

    #[test]
    fn char_vs_lifetime() {
        let got = kinds("fn f<'a>(v: &'a str) { let c = 'q'; let n = '\\n'; 'outer: loop {} }");
        assert!(got.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(got.contains(&(TokKind::Str, "'q'".into())));
        assert!(got.contains(&(TokKind::Str, "'\\n'".into())));
        assert!(got.contains(&(TokKind::Lifetime, "'outer".into())));
    }

    #[test]
    fn multibyte_char_literal_is_a_literal() {
        // The legacy scrubber's two-byte lookahead misread these as
        // lifetimes; the lexer measures the UTF-8 width.
        let got = kinds("let crab = '🦀'; let e = 'é';");
        assert!(got.contains(&(TokKind::Str, "'🦀'".into())), "{got:?}");
        assert!(got.contains(&(TokKind::Str, "'é'".into())), "{got:?}");
    }

    #[test]
    fn raw_and_byte_strings() {
        let got =
            kinds(r###"let a = r"x"; let b = r#""quoted""#; let c = b"bytes"; let d = b'z';"###);
        assert!(got.contains(&(TokKind::Str, "r\"x\"".into())));
        assert!(got.contains(&(TokKind::Str, "r#\"\"quoted\"\"#".into())), "{got:?}");
        assert!(got.contains(&(TokKind::Str, "b\"bytes\"".into())));
        assert!(got.contains(&(TokKind::Str, "b'z'".into())));
    }

    #[test]
    fn raw_identifiers() {
        let got = kinds("let r#type = 1;");
        assert!(got.contains(&(TokKind::Ident, "r#type".into())), "{got:?}");
    }

    #[test]
    fn comments_nested_and_degenerate() {
        let got = kinds("a /* x /* y */ z */ b");
        assert_eq!(got[1], (TokKind::BlockComment, "/* x /* y */ z */".into()));
        // `/*/` does NOT close a block comment in Rust; the legacy
        // scrubber treated the shared `*` as opener and closer at once.
        let got = kinds("x /*/ not code */ y");
        assert_eq!(got[1], (TokKind::BlockComment, "/*/ not code */".into()), "{got:?}");
        assert_eq!(got[2], (TokKind::Ident, "y".into()));
    }

    #[test]
    fn str_content_strips_delimiters() {
        let src = r###"["get", r#"raw"#, b"by", 'c']"###;
        let toks = lex(src);
        let strs: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.str_content(src)).collect();
        assert_eq!(strs, vec!["get", "raw", "by", "c"]);
    }

    #[test]
    fn views_preserve_length_and_lines() {
        let src =
            "let s = \"Instant::now\"; // Instant::now\nlet c = '🦀'; /* multi\nline */ f();\n";
        let v = views(src, &lex(src));
        assert_eq!(v.code.len(), src.len());
        assert_eq!(v.no_comments.len(), src.len());
        assert_eq!(v.comments.len(), src.len());
        assert_eq!(v.code.lines().count(), src.lines().count());
        assert!(!v.code.contains("Instant"), "literal + comment blanked: {}", v.code);
        assert!(v.no_comments.contains("\"Instant::now\""));
        assert!(v.comments.contains("// Instant::now"));
        assert!(v.code.contains("f()"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"raw", "'x", "b\"", "1e"] {
            let _ = views(src, &lex(src));
        }
    }
}
