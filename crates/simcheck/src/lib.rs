//! Correctness tooling for the workspace: a determinism lint pass.
//!
//! The simulation's guarantees rest on conventions a compiler cannot see:
//! no wall-clock reads inside simulated code, no native threads outside the
//! kernel, no panics on the DSO request path, serializable protocol types,
//! and `is_readonly` declarations that are actually true. `simlint` is a
//! hand-rolled source scanner (no external parser) that enforces those
//! conventions over `crates/**/*.rs` and fails CI on violations.
//!
//! Escape hatches:
//!
//! - `// simlint: allow(<rule>, reason = "...")` on the offending line or
//!   the line above suppresses a finding; a missing or empty reason is
//!   itself a finding ([`Rule::BadAllow`]).
//! - `.expect(...)` in DSO sources is accepted when a `// invariant: ...`
//!   comment within the three preceding lines documents why the value is
//!   always present.
//!
//! The scanner strips comments and string literals before matching, tracks
//! `#[cfg(test)] mod` blocks (test code may panic freely), and parses
//! `impl SharedObject for` blocks to cross-check `is_readonly` against the
//! method bodies in `invoke`.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;

pub mod analyze;
pub mod json;
pub mod lex;
pub mod syntax;

/// A lint rule enforced by `simlint`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) — nondeterministic.
    WallClock,
    /// Native thread spawns outside the simulation kernel.
    NativeThread,
    /// `unwrap`/`expect`/`panic!` on the DSO request path (non-test code).
    NoPanic,
    /// A method declared read-only whose `invoke` arm mutates `self`.
    ReadonlyMutation,
    /// A protocol type without serde derives.
    SerdeDerive,
    /// A span or metric stamped from a non-`SimTime` source.
    TraceTime,
    /// A malformed `simlint: allow` directive (unknown rule, no reason).
    BadAllow,
    /// A nondeterministic value flowing interprocedurally into kernel
    /// state, a protocol message, or trace/metric ordering (`simanalyze`).
    DeterminismTaint,
    /// A declared-readonly `SharedObject` method proven to mutate, via
    /// the interprocedural purity pass (`simanalyze`).
    ReadonlyImpure,
    /// A blocking primitive reachable without `Ctx::annotate_wait` on the
    /// path (`simanalyze`).
    WaitAnnotation,
}

impl Rule {
    /// The rule's directive name, as written in `allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::NativeThread => "native-thread",
            Rule::NoPanic => "no-panic",
            Rule::ReadonlyMutation => "readonly-mutation",
            Rule::SerdeDerive => "serde-derive",
            Rule::TraceTime => "trace-time",
            Rule::BadAllow => "bad-allow",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::ReadonlyImpure => "readonly-impure",
            Rule::WaitAnnotation => "wait-annotation",
        }
    }

    /// Parses a directive name back into a rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "wall-clock" => Some(Rule::WallClock),
            "native-thread" => Some(Rule::NativeThread),
            "no-panic" => Some(Rule::NoPanic),
            "readonly-mutation" => Some(Rule::ReadonlyMutation),
            "serde-derive" => Some(Rule::SerdeDerive),
            "trace-time" => Some(Rule::TraceTime),
            "determinism-taint" => Some(Rule::DeterminismTaint),
            "readonly-impure" => Some(Rule::ReadonlyImpure),
            "wait-annotation" => Some(Rule::WaitAnnotation),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file, as passed to [`lint_source`].
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// The scrubbed views of a source file. All have exactly the same length
/// and line structure as the original, so offsets are interchangeable
/// between them and the original.
struct Scrubbed {
    /// Comments and string/char literal *contents* blanked to spaces.
    code: String,
    /// Only comments blanked; literals kept (method names live in strings).
    no_comments: String,
    /// Everything *except* comments blanked; directives are parsed from
    /// here so text inside string literals never reads as a directive.
    comments: String,
}

fn scrub(src: &str) -> Scrubbed {
    // The views are rebuilt from the real lexer (`crate::lex`), so the
    // line rules below inherit its exactness: degenerate comments like
    // `/*/`, multibyte char literals and raw-string hash guards all
    // tokenize correctly instead of being approximated by a scanner.
    let v = lex::views(src, &lex::lex(src));
    Scrubbed { code: v.code, no_comments: v.no_comments, comments: v.comments }
}

/// Per-file lint context assembled once, consulted by every rule.
struct FileCtx<'a> {
    path: &'a str,
    code_lines: Vec<String>,
    /// line -> rules allowed there by a directive.
    allows: HashMap<usize, HashSet<Rule>>,
    /// Lines covered by a `// invariant:` comment.
    invariant: HashSet<usize>,
    /// Lines inside `#[cfg(test)] mod` blocks.
    test_lines: HashSet<usize>,
}

impl FileCtx<'_> {
    fn allowed(&self, rule: Rule, line: usize) -> bool {
        self.allows.get(&line).is_some_and(|set| set.contains(&rule))
    }
}

/// Parses `simlint: allow(...)` directives. `comment_lines` is the
/// comments-only scrub view, so directive text inside string literals is
/// invisible here; requiring the directive to *start* the comment keeps
/// prose that merely mentions the syntax (like this crate's docs) inert.
fn parse_allows(
    path: &str,
    comment_lines: &[&str],
    findings: &mut Vec<Finding>,
) -> HashMap<usize, HashSet<Rule>> {
    let mut allows: HashMap<usize, HashSet<Rule>> = HashMap::new();
    for (idx, raw) in comment_lines.iter().enumerate() {
        let line_no = idx + 1;
        let comment = raw.trim_start().trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = comment.strip_prefix("simlint: allow(") else { continue };
        let Some(close) = rest.rfind(')') else {
            findings.push(Finding {
                file: path.to_string(),
                line: line_no,
                rule: Rule::BadAllow,
                msg: "unterminated allow directive".to_string(),
            });
            continue;
        };
        let body = &rest[..close];
        let rule_name = body.split(',').next().unwrap_or("").trim();
        let Some(rule) = Rule::from_name(rule_name) else {
            findings.push(Finding {
                file: path.to_string(),
                line: line_no,
                rule: Rule::BadAllow,
                msg: format!("unknown rule {rule_name:?} in allow directive"),
            });
            continue;
        };
        // A reason is mandatory: allows without rationale rot.
        let reason_ok = body
            .find("reason")
            .map(|r| &body[r + "reason".len()..])
            .and_then(|after| after.trim_start().strip_prefix('='))
            .map(|after| after.trim_start())
            .and_then(|after| after.strip_prefix('"'))
            .is_some_and(|quoted| quoted.find('"').is_some_and(|end| end > 0));
        if !reason_ok {
            findings.push(Finding {
                file: path.to_string(),
                line: line_no,
                rule: Rule::BadAllow,
                msg: format!("allow({rule_name}) needs a non-empty reason = \"...\""),
            });
            continue;
        }
        // The directive covers its own line (trailing comment) and the next.
        allows.entry(line_no).or_default().insert(rule);
        allows.entry(line_no + 1).or_default().insert(rule);
    }
    allows
}

fn invariant_lines(comment_lines: &[&str]) -> HashSet<usize> {
    let mut covered = HashSet::new();
    for (idx, raw) in comment_lines.iter().enumerate() {
        let line_no = idx + 1;
        if raw.contains("invariant:") {
            // The comment may span a couple of lines before the expect.
            for l in line_no..=line_no + 3 {
                covered.insert(l);
            }
        }
    }
    covered
}

/// Marks every line inside a `#[cfg(test)] mod ... { }` block.
fn test_mod_lines(code: &str) -> HashSet<usize> {
    let mut out = HashSet::new();
    let line_of = line_index(code);
    let mut search = 0;
    while let Some(p) = code[search..].find("#[cfg(test)]") {
        let attr_at = search + p;
        search = attr_at + 1;
        // Find the next `mod` keyword within a few lines, then its block.
        let after = &code[attr_at..];
        let Some(m) = after.find("mod ") else { continue };
        if m > 200 {
            continue; // attribute probably on a fn or statement, not a mod
        }
        let Some(open_rel) = after[m..].find('{') else { continue };
        let open = attr_at + m + open_rel;
        let close = match_brace(code, open);
        for l in line_of(attr_at)..=line_of(close) {
            out.insert(l);
        }
    }
    out
}

/// Byte offset of the matching `}` for the `{` at `open` (or end of file).
fn match_brace(code: &str, open: usize) -> usize {
    let b = code.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Returns a closure mapping byte offsets to 1-based line numbers.
fn line_index(s: &str) -> impl Fn(usize) -> usize + '_ {
    let starts: Vec<usize> = std::iter::once(0)
        .chain(s.bytes().enumerate().filter(|(_, c)| *c == b'\n').map(|(i, _)| i + 1))
        .collect();
    move |off: usize| starts.partition_point(|&st| st <= off)
}

/// Lints one file's source. `path` is used for reporting and for the
/// path-scoped rules (kernel thread allowlist, DSO no-panic scope,
/// `protocol.rs` serde scope).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let scrubbed = scrub(src);
    let comment_lines: Vec<&str> = scrubbed.comments.lines().collect();
    let ctx = FileCtx {
        path,
        allows: parse_allows(path, &comment_lines, &mut findings),
        invariant: invariant_lines(&comment_lines),
        test_lines: test_mod_lines(&scrubbed.code),
        code_lines: scrubbed.code.lines().map(str::to_string).collect(),
    };
    lint_wall_clock(&ctx, &mut findings);
    lint_native_thread(&ctx, &mut findings);
    lint_no_panic(&ctx, &mut findings);
    lint_serde_derive(&ctx, &mut findings);
    lint_trace_time(&ctx, &mut findings);
    lint_readonly_mutation(&ctx, &scrubbed, &mut findings);
    findings
}

fn push(findings: &mut Vec<Finding>, ctx: &FileCtx<'_>, line: usize, rule: Rule, msg: String) {
    findings.push(Finding { file: ctx.path.to_string(), line, rule, msg });
}

fn lint_wall_clock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    const PATTERNS: [&str; 4] =
        ["Instant::now", "SystemTime::now", "std::time::Instant", "std::time::SystemTime"];
    for (idx, code) in ctx.code_lines.iter().enumerate() {
        let line = idx + 1;
        if let Some(pat) = PATTERNS.iter().find(|p| code.contains(*p)) {
            if !ctx.allowed(Rule::WallClock, line) {
                push(
                    findings,
                    ctx,
                    line,
                    Rule::WallClock,
                    format!("wall-clock read ({pat}) breaks determinism; use virtual time"),
                );
            }
        }
    }
}

fn lint_trace_time(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // Spans and metrics must be stamped with simulated time only: a single
    // host-clock-derived duration in a histogram makes exports differ run
    // to run. Catches host time flowing into a recording call even where
    // the clock read itself carries a wall-clock allow (e.g. the bench
    // driver's operator-facing timer).
    const SINKS: [&str; 8] = [
        "span_begin",
        "span_instant",
        "span_end",
        "span_annotate",
        "metric_record",
        "metric_add",
        "metric_incr",
        ".record(",
    ];
    const SOURCES: [&str; 3] = ["Instant", "SystemTime", ".elapsed()"];
    for (idx, code) in ctx.code_lines.iter().enumerate() {
        let line = idx + 1;
        let Some(sink) = SINKS.iter().find(|s| code.contains(*s)) else { continue };
        let Some(src) = SOURCES.iter().find(|s| code.contains(*s)) else { continue };
        if !ctx.allowed(Rule::TraceTime, line) {
            push(
                findings,
                ctx,
                line,
                Rule::TraceTime,
                format!("{sink} fed from {src}; stamp spans/metrics with SimTime only"),
            );
        }
    }
}

fn lint_native_thread(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // The kernel's processes *are* OS threads; everything else must spawn
    // simulation processes instead.
    if ctx.path.ends_with("simcore/src/kernel.rs") {
        return;
    }
    for (idx, code) in ctx.code_lines.iter().enumerate() {
        let line = idx + 1;
        if (code.contains("thread::spawn") || code.contains("thread::Builder"))
            && !ctx.allowed(Rule::NativeThread, line)
        {
            push(
                findings,
                ctx,
                line,
                Rule::NativeThread,
                "native thread spawn outside the kernel; spawn a simulation process".to_string(),
            );
        }
    }
}

fn lint_no_panic(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // Scope: the DSO request path. A panicking worker wedges the whole
    // simulated node, which no test asserts on.
    if !ctx.path.contains("dso/src") {
        return;
    }
    const HARD: [&str; 5] = [".unwrap()", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];
    for (idx, code) in ctx.code_lines.iter().enumerate() {
        let line = idx + 1;
        if ctx.test_lines.contains(&line) || ctx.allowed(Rule::NoPanic, line) {
            continue;
        }
        if let Some(pat) = HARD.iter().find(|p| code.contains(*p)) {
            push(
                findings,
                ctx,
                line,
                Rule::NoPanic,
                format!("{pat}..) on the DSO path; return a DsoError/ObjectError instead"),
            );
        } else if code.contains(".expect(") && !ctx.invariant.contains(&line) {
            push(
                findings,
                ctx,
                line,
                Rule::NoPanic,
                ".expect() without an `// invariant:` comment documenting why it cannot fail"
                    .to_string(),
            );
        }
    }
}

fn lint_serde_derive(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    // Scope: wire-protocol modules. Every public type there must be
    // serializable so messages survive a real codec boundary.
    if Path::new(ctx.path).file_name().and_then(|n| n.to_str()) != Some("protocol.rs") {
        return;
    }
    for (idx, code) in ctx.code_lines.iter().enumerate() {
        let line = idx + 1;
        let t = code.trim_start();
        if !(t.starts_with("pub struct ") || t.starts_with("pub enum "))
            || ctx.test_lines.contains(&line)
        {
            continue;
        }
        let name = t
            .split_whitespace()
            .nth(2)
            .unwrap_or("?")
            .split(['(', '<', '{'])
            .next()
            .unwrap_or("?")
            .trim_end_matches(|c: char| !c.is_alphanumeric());
        // Scan the attribute block above the declaration for the derives.
        let mut derives = String::new();
        for back in (0..idx).rev() {
            let above = ctx.code_lines[back].trim_start();
            let blank = above.is_empty(); // doc comments scrub to blank
            if above.ends_with(';') || above.ends_with('}') || above.contains("fn ") {
                break;
            }
            if !blank {
                derives.push_str(above);
            }
            if idx - back > 12 {
                break;
            }
        }
        let has_serde = derives.contains("Serialize") && derives.contains("Deserialize");
        if !has_serde && !ctx.allowed(Rule::SerdeDerive, line) {
            push(
                findings,
                ctx,
                line,
                Rule::SerdeDerive,
                format!("protocol type {name} lacks #[derive(Serialize, Deserialize)]"),
            );
        }
    }
}

fn lint_readonly_mutation(ctx: &FileCtx<'_>, scrubbed: &Scrubbed, findings: &mut Vec<Finding>) {
    // Integration tests define deliberately lying objects to exercise the
    // runtime `verify_readonly` rejection path; those are the tests'
    // point, not violations.
    if ctx.path.contains("/tests/") {
        return;
    }
    let code = &scrubbed.code;
    let noc = &scrubbed.no_comments;
    let line_of = line_index(code);
    let mut search = 0;
    while let Some(p) = code[search..].find("impl SharedObject for") {
        let impl_at = search + p;
        search = impl_at + 1;
        let Some(open_rel) = code[impl_at..].find('{') else { continue };
        let open = impl_at + open_rel;
        let close = match_brace(code, open);
        let readonly = readonly_names(&noc[open..close]);
        if readonly.is_empty() {
            continue;
        }
        let Some(inv_rel) = code[open..close].find("fn invoke") else { continue };
        let inv_at = open + inv_rel;
        let Some(inv_open_rel) = code[inv_at..close].find('{') else { continue };
        let inv_open = inv_at + inv_open_rel;
        let inv_close = match_brace(code, inv_open);
        for name in &readonly {
            let needle = format!("\"{name}\"");
            let mut from = inv_open;
            while let Some(q) = noc[from..inv_close].find(&needle) {
                let at = from + q;
                from = at + needle.len();
                let after = &code[at + needle.len()..inv_close];
                let Some(arrow) = after.find("=>") else { continue };
                if after[..arrow].trim() != "" {
                    continue; // not a match arm for this name
                }
                let arm_start = at + needle.len() + arrow + 2;
                let arm = extract_arm(code, arm_start, inv_close);
                if let Some(why) = find_mutation(arm) {
                    let line = line_of(at);
                    if !ctx.allowed(Rule::ReadonlyMutation, line) {
                        push(
                            findings,
                            ctx,
                            line,
                            Rule::ReadonlyMutation,
                            format!(
                                "method \"{name}\" is declared read-only but its body mutates self ({why})"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Method names quoted inside the `is_readonly` body (typically the
/// `matches!(method, "a" | "b")` list). Operates on comment-stripped,
/// string-preserving text of one impl block.
fn readonly_names(block: &str) -> Vec<String> {
    let Some(ro) = block.find("fn is_readonly") else { return Vec::new() };
    let Some(open_rel) = block[ro..].find('{') else { return Vec::new() };
    let open = ro + open_rel;
    let close = match_brace(block, open);
    let body = &block[open..close];
    let mut names = Vec::new();
    let mut rest = body;
    while let Some(q1) = rest.find('"') {
        let Some(q2) = rest[q1 + 1..].find('"') else { break };
        names.push(rest[q1 + 1..q1 + 1 + q2].to_string());
        rest = &rest[q1 + q2 + 2..];
    }
    names
}

/// The text of a match arm starting right after its `=>`, bounded by
/// `limit`: a braced block, or everything up to the first top-level comma.
fn extract_arm(code: &str, start: usize, limit: usize) -> &str {
    let b = code.as_bytes();
    let mut i = start;
    while i < limit && (b[i] as char).is_whitespace() {
        i += 1;
    }
    if i < limit && b[i] == b'{' {
        let close = match_brace(code, i).min(limit);
        return &code[i..close];
    }
    let mut depth = 0i32;
    for j in i..limit {
        match b[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => return &code[i..j],
            _ => {}
        }
    }
    &code[i..limit]
}

const MUTATORS: [&str; 14] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "remove",
    "pop",
    "pop_front",
    "pop_back",
    "clear",
    "drain",
    "truncate",
    "retain",
    "extend",
    "swap",
];

/// Scans one match arm for mutations of `self`; returns a description of
/// the first one found.
fn find_mutation(arm: &str) -> Option<String> {
    if arm.contains("&mut self") {
        return Some("takes &mut self".to_string());
    }
    if arm.contains("mem::take(") {
        return Some("mem::take".to_string());
    }
    let b = arm.as_bytes();
    let mut from = 0;
    while let Some(p) = arm[from..].find("self.") {
        let start = from + p + "self.".len();
        from = start;
        // Consume the field/method path.
        let mut end = start;
        while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_' || b[end] == b'.')
        {
            end += 1;
        }
        let path = &arm[start..end];
        let mut rest = arm[end..].trim_start();
        // Method-call mutators: self.x.push(..), self.queue.pop_front(), …
        if rest.starts_with('(') {
            let last = path.rsplit('.').next().unwrap_or(path);
            if MUTATORS.contains(&last) {
                return Some(format!("calls self.{path}(..)"));
            }
            continue;
        }
        // Assignments: self.x = .., self.x += .., …
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
            if rest.starts_with(op) {
                return Some(format!("self.{path} {op} .."));
            }
        }
        if let Some(tail) = rest.strip_prefix('=') {
            if !tail.starts_with('=') && !tail.starts_with('>') {
                return Some(format!("assigns self.{path}"));
            }
        }
        let _ = &mut rest;
    }
    None
}

/// Recursively lints every `.rs` file under `root`, skipping build output,
/// vendored compat shims and the lint fixtures themselves.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(name.as_ref(), "target" | "fixtures" | ".git" | "compat") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        let shown = path.strip_prefix(root.parent().unwrap_or(root)).unwrap_or(&path);
        findings.extend(lint_source(&shown.display().to_string(), &src));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let s = scrub("let x = \"Instant::now\"; // Instant::now\nlet y = 1;");
        assert!(!s.code.contains("Instant::now"));
        assert!(s.no_comments.contains("\"Instant::now\""));
        assert!(!s.no_comments.contains("// Instant"));
        assert_eq!(s.code.len(), s.no_comments.len());
    }

    #[test]
    fn scrub_handles_lifetimes_and_chars() {
        let s = scrub("fn f<'a>(v: &'a str) { let c = 'q'; let d = '\\n'; }");
        assert!(s.code.contains("'a"), "lifetime preserved: {}", s.code);
        assert!(!s.code.contains('q'), "char literal blanked: {}", s.code);
        assert!(!s.code.contains("\\n"), "escape blanked: {}", s.code);
    }

    #[test]
    fn wall_clock_flagged_and_allowed() {
        let f = lint_source("crates/x/src/a.rs", "let t = Instant::now();\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::WallClock);
        assert_eq!(f[0].line, 1);
        let src = "// simlint: allow(wall-clock, reason = \"operator wall time\")\nlet t = Instant::now();\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
        // In a string or comment it is no violation at all.
        let src = "let t = \"Instant::now\"; // Instant::now()\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "// simlint: allow(wall-clock)\nlet t = Instant::now();\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|f| f.rule == Rule::BadAllow), "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::WallClock), "unreasoned allow must not suppress");
        let src = "// simlint: allow(frobnicate, reason = \"x\")\n";
        let f = lint_source("crates/x/src/a.rs", src);
        assert!(f.iter().any(|f| f.rule == Rule::BadAllow && f.msg.contains("unknown rule")));
    }

    #[test]
    fn trace_time_flagged_and_allowed() {
        let f = lint_source("crates/x/src/a.rs", "ctx.metric_record(\"m\", t0.elapsed());\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TraceTime);
        assert!(f[0].msg.contains("SimTime"), "{}", f[0].msg);
        let src = "// simlint: allow(trace-time, reason = \"host duration\")\n\
                   ctx.metric_record(\"m\", t0.elapsed());\n";
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
        // SimTime-derived durations are no violation.
        let ok = "ctx.metric_record(\"m\", ctx.now() - t0);\n";
        assert!(lint_source("crates/x/src/a.rs", ok).is_empty());
        // Raw tracer/histogram calls are covered too.
        let f = lint_source("crates/x/src/a.rs", "hist.record(timer.elapsed());\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::TraceTime);
    }

    #[test]
    fn native_thread_scoped_to_non_kernel() {
        let src = "std::thread::spawn(|| {});\n";
        assert_eq!(lint_source("crates/x/src/a.rs", src).len(), 1);
        assert!(lint_source("crates/simcore/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn no_panic_scoped_and_test_excluded() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let f = lint_source("crates/dso/src/a.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(lint_source("crates/simcore/src/a.rs", src).is_empty(), "only dso scoped");
    }

    #[test]
    fn expect_needs_invariant_comment() {
        let bad = "fn f() { x.expect(\"y\"); }\n";
        assert_eq!(lint_source("crates/dso/src/a.rs", bad).len(), 1);
        let good = "fn f() {\n    // invariant: x was set above.\n    x.expect(\"y\");\n}\n";
        assert!(lint_source("crates/dso/src/a.rs", good).is_empty());
    }

    #[test]
    fn serde_derive_scoped_to_protocol() {
        let src = "#[derive(Debug)]\npub struct Msg { pub x: u8 }\n";
        let f = lint_source("crates/x/src/protocol.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SerdeDerive);
        assert!(lint_source("crates/x/src/other.rs", src).is_empty());
        let ok = "#[derive(Debug, Serialize, Deserialize)]\npub struct Msg { pub x: u8 }\n";
        assert!(lint_source("crates/x/src/protocol.rs", ok).is_empty());
    }

    const SNEAKY: &str = r#"
impl SharedObject for Sneaky {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "peek" => {
                self.count += 1;
                Effects::value(&self.count)
            }
            "get" => Effects::value(&self.count),
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }
    fn is_readonly(&self, method: &str) -> bool {
        matches!(method, "peek" | "get")
    }
}
"#;

    #[test]
    fn readonly_mutation_caught() {
        let f = lint_source("crates/x/src/obj.rs", SNEAKY);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ReadonlyMutation);
        assert!(f[0].msg.contains("peek"), "{}", f[0].msg);
        // An honest read-only arm ("get") is not flagged.
        assert!(!f.iter().any(|f| f.msg.contains("\"get\"")));
    }

    #[test]
    fn readonly_mutation_allow_honored() {
        let allowed = SNEAKY.replace(
            "            \"peek\" =>",
            "            // simlint: allow(readonly-mutation, reason = \"test fixture\")\n            \"peek\" =>",
        );
        assert!(lint_source("crates/x/src/obj.rs", &allowed).is_empty());
    }

    #[test]
    fn readonly_method_call_mutators_caught() {
        let src = r#"
impl SharedObject for S {
    fn invoke(&mut self, call: &CallCtx, method: &str, args: &[u8]) -> Result<Effects, ObjErr> {
        match method {
            "size" => { self.items.push(1); Effects::value(&0) }
            other => Err(ObjErr::MethodNotFound(other.to_string())),
        }
    }
    fn is_readonly(&self, method: &str) -> bool { matches!(method, "size") }
}
"#;
        let f = lint_source("crates/x/src/obj.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("push"));
    }
}
