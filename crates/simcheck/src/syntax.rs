//! A lightweight item and function-body parser over [`crate::lex`]
//! tokens.
//!
//! This is deliberately *not* a full Rust AST. The interprocedural passes
//! in [`crate::analyze`] need four things from a source file: which
//! functions exist (with their impl context, self parameter and body
//! span), which structs exist (with their field names), which call sites
//! appear inside a body (callee path or method name, receiver root,
//! argument spans), and which struct-literal expressions construct a
//! known type. Everything else — expressions, types, generics — is
//! skipped by balanced-bracket matching.
//!
//! The parser is resilient by construction: unrecognized tokens advance
//! the cursor, so macro-heavy or exotic code degrades to "no facts
//! extracted" rather than an error.

use crate::lex::{Tok, TokKind};

/// How a method takes `self`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SelfKind {
    /// Free function — no `self` parameter.
    None,
    /// `&self`.
    Ref,
    /// `&mut self`.
    RefMut,
    /// `self` or `mut self` by value.
    Value,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// `Self` type name when defined inside an `impl` block.
    pub impl_type: Option<String>,
    /// Trait name when inside an `impl Trait for Type` block.
    pub impl_trait: Option<String>,
    /// How the function takes `self`.
    pub self_kind: SelfKind,
    /// Whether the signature declares a return type (`->`).
    pub has_ret: bool,
    /// Token-index range of the body, including the outer braces; `None`
    /// for trait-method declarations without a body.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` module, or carrying `#[test]`.
    pub is_test: bool,
}

/// One `struct` or `enum` item.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// The type's name.
    pub name: String,
    /// Named field idents (empty for tuple structs and enums).
    pub fields: Vec<String>,
    /// 1-based line of the declaration.
    pub line: u32,
    /// Whether any field type mentions an interior-mutability container
    /// (`Cell`, `RefCell`, `Mutex`, `RwLock`, `UnsafeCell`, `Atomic*`) —
    /// a `&self` method of such a type can still mutate.
    pub has_interior_mut: bool,
}

/// Parsed facts about one source file.
pub struct FileAst {
    /// Path as given to [`parse_file`] (reporting only).
    pub path: String,
    /// The source text.
    pub src: String,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnDef>,
    /// Every `struct`/`enum` item found.
    pub structs: Vec<StructDef>,
}

/// Parses one file into items. Never fails.
pub fn parse_file(path: &str, src: &str) -> FileAst {
    let toks = crate::lex::lex(src);
    let mut ast = FileAst {
        path: path.to_string(),
        src: src.to_string(),
        toks,
        fns: Vec::new(),
        structs: Vec::new(),
    };
    let end = ast.toks.len();
    let mut p = Parser { ast: &mut ast, in_test: false, impl_type: None, impl_trait: None };
    p.items(0, end);
    ast
}

/// Matching close-bracket index for the open bracket at `i` (token
/// indices); returns `end` if unbalanced.
pub fn match_close(toks: &[Tok], src: &str, i: usize, end: usize) -> usize {
    let b = src.as_bytes();
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(i) {
        if t.kind == TokKind::Punct {
            match b[t.lo] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    end
}

struct Parser<'a> {
    ast: &'a mut FileAst,
    in_test: bool,
    impl_type: Option<String>,
    impl_trait: Option<String>,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.ast.toks[i].text(&self.ast.src)
    }

    fn is_punct(&self, i: usize, c: u8) -> bool {
        i < self.ast.toks.len() && self.ast.toks[i].is_punct(&self.ast.src, c)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.ast.toks.len() && self.ast.toks[i].kind == TokKind::Ident && self.text(i) == s
    }

    /// Skips a balanced `<…>` generics list starting at `i` if present.
    /// Angle brackets are not tracked by [`match_close`] (they are also
    /// comparison operators), so this counts them directly — safe inside
    /// a generics position.
    fn skip_generics(&self, mut i: usize, end: usize) -> usize {
        if !self.is_punct(i, b'<') {
            return i;
        }
        let mut depth = 0i32;
        while i < end {
            if self.is_punct(i, b'<') {
                depth += 1;
            } else if self.is_punct(i, b'>') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Scans attributes/doc-comments starting at `i`; returns the index
    /// after them and whether any was `#[test]`-like or `#[cfg(test)]`.
    fn skip_attrs(&self, mut i: usize, end: usize) -> (usize, bool) {
        let mut test = false;
        loop {
            while i < end
                && matches!(self.ast.toks[i].kind, TokKind::LineComment | TokKind::BlockComment)
            {
                i += 1;
            }
            if self.is_punct(i, b'#') {
                let mut j = i + 1;
                if self.is_punct(j, b'!') {
                    j += 1;
                }
                if self.is_punct(j, b'[') {
                    let close = match_close(&self.ast.toks, &self.ast.src, j, end);
                    let body: Vec<&str> =
                        (j + 1..close).map(|k| self.ast.toks[k].text(&self.ast.src)).collect();
                    if body.contains(&"test") {
                        test = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
            return (i, test);
        }
    }

    /// The last segment of a type path starting at `i`; returns the name
    /// and the index after the whole path (generics skipped).
    fn type_path(&self, mut i: usize, end: usize) -> (String, usize) {
        let mut name = String::new();
        // Leading `&`, lifetimes and `dyn`/`mut` qualifiers.
        while i < end
            && (self.is_punct(i, b'&')
                || self.ast.toks[i].kind == TokKind::Lifetime
                || self.is_ident(i, "dyn")
                || self.is_ident(i, "mut"))
        {
            i += 1;
        }
        while i < end && self.ast.toks[i].kind == TokKind::Ident {
            name = self.text(i).to_string();
            i += 1;
            i = self.skip_generics(i, end);
            if self.is_punct(i, b':') && self.is_punct(i + 1, b':') {
                i += 2;
            } else {
                break;
            }
        }
        (name, i)
    }

    fn items(&mut self, mut i: usize, end: usize) {
        while i < end {
            let (after_attrs, attr_test) = self.skip_attrs(i, end);
            i = after_attrs;
            if i >= end {
                break;
            }
            if self.ast.toks[i].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match self.text(i) {
                "mod" if i + 1 < end && self.ast.toks[i + 1].kind == TokKind::Ident => {
                    // `mod name { … }` — recurse with the test flag; the
                    // attribute was scanned just above.
                    if self.is_punct(i + 2, b'{') {
                        let close = match_close(&self.ast.toks, &self.ast.src, i + 2, end);
                        let saved = self.in_test;
                        self.in_test = saved || attr_test;
                        self.items(i + 3, close);
                        self.in_test = saved;
                        i = close + 1;
                    } else {
                        i += 2; // `mod name;`
                    }
                }
                "impl" => {
                    let mut j = self.skip_generics(i + 1, end);
                    let (first, after) = self.type_path(j, end);
                    j = after;
                    let (ty, tr) = if self.is_ident(j, "for") {
                        let (ty, after) = self.type_path(j + 1, end);
                        j = after;
                        (ty, Some(first))
                    } else {
                        (first, None)
                    };
                    // Skip a where-clause to the block.
                    while j < end && !self.is_punct(j, b'{') {
                        j += 1;
                    }
                    if j >= end {
                        i = end;
                        continue;
                    }
                    let close = match_close(&self.ast.toks, &self.ast.src, j, end);
                    let (saved_ty, saved_tr) = (self.impl_type.take(), self.impl_trait.take());
                    let saved_test = self.in_test;
                    self.impl_type = Some(ty);
                    self.impl_trait = tr;
                    self.in_test = saved_test || attr_test;
                    self.items(j + 1, close);
                    self.impl_type = saved_ty;
                    self.impl_trait = saved_tr;
                    self.in_test = saved_test;
                    i = close + 1;
                }
                "fn" if i + 1 < end && self.ast.toks[i + 1].kind == TokKind::Ident => {
                    i = self.fn_item(i, end, attr_test);
                }
                "struct" | "enum" if i + 1 < end && self.ast.toks[i + 1].kind == TokKind::Ident => {
                    i = self.struct_item(i, end);
                }
                _ => i += 1,
            }
        }
    }

    fn fn_item(&mut self, at: usize, end: usize, attr_test: bool) -> usize {
        let name = self.text(at + 1).to_string();
        let line = self.ast.toks[at].line;
        let j = self.skip_generics(at + 2, end);
        if !self.is_punct(j, b'(') {
            return at + 2; // `fn` pointer type or macro fragment
        }
        let params_close = match_close(&self.ast.toks, &self.ast.src, j, end);
        // Self kind: inspect the first few tokens inside the parens.
        let mut self_kind = SelfKind::None;
        let mut k = j + 1;
        if self.is_punct(k, b'&') {
            k += 1;
            if self.ast.toks.get(k).is_some_and(|t| t.kind == TokKind::Lifetime) {
                k += 1;
            }
            if self.is_ident(k, "mut") && self.is_ident(k + 1, "self") {
                self_kind = SelfKind::RefMut;
            } else if self.is_ident(k, "self") {
                self_kind = SelfKind::Ref;
            }
        } else if self.is_ident(k, "self")
            || (self.is_ident(k, "mut") && self.is_ident(k + 1, "self"))
        {
            self_kind = SelfKind::Value;
        }
        // Return type: a `->` between the parens and the body/semicolon.
        let mut j = params_close + 1;
        let mut has_ret = false;
        while j < end && !self.is_punct(j, b'{') && !self.is_punct(j, b';') {
            if self.is_punct(j, b'-') && self.is_punct(j + 1, b'>') {
                has_ret = true;
            }
            j += 1;
        }
        let body = if j < end && self.is_punct(j, b'{') {
            let close = match_close(&self.ast.toks, &self.ast.src, j, end);
            Some((j, close + 1))
        } else {
            None
        };
        self.ast.fns.push(FnDef {
            name,
            impl_type: self.impl_type.clone(),
            impl_trait: self.impl_trait.clone(),
            self_kind,
            has_ret,
            body,
            line,
            is_test: self.in_test || attr_test,
        });
        match body {
            Some((_, after)) => after,
            None => j.min(end) + 1,
        }
    }

    fn struct_item(&mut self, at: usize, end: usize) -> usize {
        let name = self.text(at + 1).to_string();
        let line = self.ast.toks[at].line;
        let is_enum = self.text(at) == "enum";
        let mut j = self.skip_generics(at + 2, end);
        // Skip a where-clause; stop at `{`, `(` (tuple struct) or `;`.
        while j < end
            && !self.is_punct(j, b'{')
            && !self.is_punct(j, b'(')
            && !self.is_punct(j, b';')
        {
            j += 1;
        }
        let mut fields = Vec::new();
        let mut interior = false;
        let after = if j < end && self.is_punct(j, b'{') {
            let close = match_close(&self.ast.toks, &self.ast.src, j, end);
            for k in j..close {
                let t = &self.ast.toks[k];
                if t.kind == TokKind::Ident {
                    let s = t.text(&self.ast.src);
                    if matches!(s, "Cell" | "RefCell" | "Mutex" | "RwLock" | "UnsafeCell")
                        || s.starts_with("Atomic")
                    {
                        interior = true;
                    }
                }
            }
            if !is_enum {
                // Named fields: idents directly followed by `:` at depth 1.
                let mut depth = 0i32;
                for k in j..close {
                    let t = &self.ast.toks[k];
                    if t.kind == TokKind::Punct {
                        match self.ast.src.as_bytes()[t.lo] {
                            b'{' | b'(' | b'[' | b'<' => depth += 1,
                            b'}' | b')' | b']' | b'>' => depth -= 1,
                            _ => {}
                        }
                    }
                    if depth == 1
                        && t.kind == TokKind::Ident
                        && self.is_punct(k + 1, b':')
                        && !self.is_punct(k + 2, b':')
                    {
                        fields.push(self.text(k).to_string());
                    }
                }
            }
            close + 1
        } else if j < end && self.is_punct(j, b'(') {
            match_close(&self.ast.toks, &self.ast.src, j, end) + 1
        } else {
            j.min(end) + 1
        };
        self.ast.structs.push(StructDef { name, fields, line, has_interior_mut: interior });
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fn_and_method() {
        let src = "fn top(x: u8) -> u8 { x }\n\
                   impl Widget { fn poke(&mut self) { self.n += 1; } fn peek(&self) -> u8 { 0 } }\n\
                   impl Display for Widget { fn fmt(&self, f: &mut F) -> R { ok }\n}";
        let ast = parse_file("a.rs", src);
        let names: Vec<(&str, Option<&str>, Option<&str>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.impl_trait.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top", None, None),
                ("poke", Some("Widget"), None),
                ("peek", Some("Widget"), None),
                ("fmt", Some("Widget"), Some("Display")),
            ]
        );
        assert_eq!(ast.fns[0].self_kind, SelfKind::None);
        assert!(ast.fns[0].has_ret);
        assert_eq!(ast.fns[1].self_kind, SelfKind::RefMut);
        assert!(!ast.fns[1].has_ret);
        assert_eq!(ast.fns[2].self_kind, SelfKind::Ref);
        assert_eq!(ast.fns[3].self_kind, SelfKind::Ref);
    }

    #[test]
    fn test_mods_and_attrs_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n#[test]\nfn top_level_case() {}\n";
        let ast = parse_file("a.rs", src);
        let flags: Vec<(&str, bool)> =
            ast.fns.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![("real", false), ("helper", true), ("case", true), ("top_level_case", true)]
        );
    }

    #[test]
    fn generic_fns_and_impls() {
        let src = "impl<T: Clone> Stack<T> { fn push2<U>(&mut self, x: T) where T: Copy { } }";
        let ast = parse_file("a.rs", src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "push2");
        assert_eq!(ast.fns[0].impl_type.as_deref(), Some("Stack"));
        assert_eq!(ast.fns[0].self_kind, SelfKind::RefMut);
    }

    #[test]
    fn structs_collect_field_names() {
        let src = "pub struct Msg { pub at: u64, body: Vec<u8>, nested: Inner<A, B> }\n\
                   struct Tup(u8, u8);\npub enum Kind { A { x: u8 }, B }\n";
        let ast = parse_file("a.rs", src);
        assert_eq!(ast.structs.len(), 3);
        assert_eq!(ast.structs[0].name, "Msg");
        assert_eq!(ast.structs[0].fields, vec!["at", "body", "nested"]);
        assert_eq!(ast.structs[1].name, "Tup");
        assert!(ast.structs[1].fields.is_empty());
        assert_eq!(ast.structs[2].name, "Kind");
        assert!(ast.structs[2].fields.is_empty(), "enum variant fields are not struct fields");
    }

    #[test]
    fn trait_decls_without_bodies() {
        let src = "trait T { fn must(&self) -> u8; fn given(&self) -> u8 { 1 } }";
        let ast = parse_file("a.rs", src);
        assert_eq!(ast.fns.len(), 2);
        assert!(ast.fns[0].body.is_none());
        assert!(ast.fns[1].body.is_some());
    }
}
