//! Meta-tests for the interprocedural analyzer (`simcheck::analyze`):
//! the bad fixture tree yields exactly the planted findings — including
//! the chain a line-regex provably cannot catch — the good tree is clean
//! and proves the planted methods pure, and the shipped workspace itself
//! analyzes clean (the same gate `simanalyze` enforces in CI).

use std::path::Path;

use simcheck::analyze::analyze_tree;
use simcheck::Rule;

fn fixture(sub: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/analyze").join(sub)
}

#[test]
fn bad_tree_yields_exactly_the_planted_findings() {
    let analysis = analyze_tree(&fixture("bad")).expect("walk fixtures");
    let mut got: Vec<(String, Rule)> = analysis
        .findings
        .iter()
        .map(|f| (f.file.rsplit('/').next().unwrap_or(&f.file).to_string(), f.rule))
        .collect();
    got.sort();
    let mut want = vec![
        ("impure.rs".to_string(), Rule::ReadonlyImpure),
        ("lease.rs".to_string(), Rule::DeterminismTaint),
        ("nondet.rs".to_string(), Rule::DeterminismTaint),
        ("restore.rs".to_string(), Rule::DeterminismTaint),
        ("taint_chain.rs".to_string(), Rule::DeterminismTaint),
        ("waits.rs".to_string(), Rule::WaitAnnotation),
        ("walseg.rs".to_string(), Rule::DeterminismTaint),
    ];
    want.sort();
    assert_eq!(got, want, "full findings: {:#?}", analysis.findings);
    // The lying object must not be certified pure.
    assert!(analysis.pure.entries.is_empty(), "bad tree proved: {:?}", analysis.pure.entries);
}

#[test]
fn interprocedural_taint_is_beyond_any_line_regex() {
    let analysis = analyze_tree(&fixture("bad")).expect("walk fixtures");
    let f = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("taint_chain.rs"))
        .expect("planted chain finding");
    assert_eq!(f.rule, Rule::DeterminismTaint);
    // The finding sits in `announce`, two calls away from the clock read:
    // no token of the flagged construct names a clock API, and the trace
    // in the message walks the chain back to the true source.
    assert!(f.msg.contains("Announce"), "{}", f.msg);
    assert!(f.msg.contains("stamp_ms"), "{}", f.msg);
    assert!(f.msg.contains("raw_clock_ms"), "{}", f.msg);
    assert!(f.msg.contains("SystemTime::now"), "{}", f.msg);
}

#[test]
fn wall_clock_laundered_into_a_lease_field_is_caught() {
    let analysis = analyze_tree(&fixture("bad")).expect("walk fixtures");
    let f = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("lease.rs"))
        .expect("planted lease finding");
    assert_eq!(f.rule, Rule::DeterminismTaint);
    // The finding sits at the `ReadStamp` wire literal, and the trace
    // names the laundering helper and the true clock source.
    assert!(f.msg.contains("ReadStamp"), "{}", f.msg);
    assert!(f.msg.contains("lease_deadline_ms"), "{}", f.msg);
    assert!(f.msg.contains("SystemTime::now"), "{}", f.msg);
}

#[test]
fn wall_clock_laundered_into_a_restore_cost_is_caught() {
    let analysis = analyze_tree(&fixture("bad")).expect("walk fixtures");
    let f = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("restore.rs"))
        .expect("planted restore finding");
    assert_eq!(f.rule, Rule::DeterminismTaint);
    // The finding sits at the `RestoreBill` wire literal; the trace walks
    // through the cost helper and the dirty-page estimator back to the
    // true clock source.
    assert!(f.msg.contains("RestoreBill"), "{}", f.msg);
    assert!(f.msg.contains("restore_cost_ms"), "{}", f.msg);
    assert!(f.msg.contains("pages_since_snapshot"), "{}", f.msg);
    assert!(f.msg.contains("SystemTime::now"), "{}", f.msg);
}

#[test]
fn wall_clock_laundered_into_a_wal_header_is_caught() {
    let analysis = analyze_tree(&fixture("bad")).expect("walk fixtures");
    let f = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("walseg.rs"))
        .expect("planted WAL-header finding");
    assert_eq!(f.rule, Rule::DeterminismTaint);
    // The finding sits at the `WalSegmentHeader` wire literal; the trace
    // names the seal-time helper and the true clock source.
    assert!(f.msg.contains("WalSegmentHeader"), "{}", f.msg);
    assert!(f.msg.contains("sealed_at_ms"), "{}", f.msg);
    assert!(f.msg.contains("SystemTime::now"), "{}", f.msg);
}

#[test]
fn marked_nondet_source_taints_through_a_local() {
    let analysis = analyze_tree(&fixture("bad")).expect("walk fixtures");
    let f = analysis
        .findings
        .iter()
        .find(|f| f.file.ends_with("nondet.rs"))
        .expect("planted marker finding");
    assert!(f.msg.contains("host_entropy"), "{}", f.msg);
    assert!(f.msg.contains("send"), "{}", f.msg);
}

#[test]
fn good_tree_is_clean_and_proves_purity() {
    let analysis = analyze_tree(&fixture("good")).expect("walk fixtures");
    assert!(analysis.findings.is_empty(), "clean tree findings: {:#?}", analysis.findings);
    // The honest readonly methods — including the one that delegates to a
    // `&self` helper — are certified pure.
    assert!(analysis.pure.entries.contains(&("Counter".to_string(), "get".to_string())));
    assert!(analysis.pure.entries.contains(&("Counter".to_string(), "summary".to_string())));
    // Purity certificates cover declared-readonly methods only.
    assert!(!analysis.pure.entries.contains(&("Counter".to_string(), "bump".to_string())));
}

#[test]
fn pure_report_text_round_trips() {
    let analysis = analyze_tree(&fixture("good")).expect("walk fixtures");
    let text = analysis.pure.to_text();
    assert!(text.starts_with('#'), "header comment first: {text}");
    assert!(text.contains("Counter get\n"), "{text}");
    assert!(text.contains("Counter summary\n"), "{text}");
}

#[test]
fn workspace_analyzes_clean() {
    // The real gate: the shipped sources must pass all three passes, the
    // same invariant `simanalyze` enforces in ci.sh.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let analysis = analyze_tree(&root).expect("walk crates");
    assert!(
        analysis.findings.is_empty(),
        "workspace analyzer violations:\n{}",
        analysis.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    // The purity pass keeps certifying the builtin read-only surface the
    // DSO runtime consumes (spot-check a few anchors, not the full list,
    // so adding objects does not churn this test).
    for (ty, m) in [("AtomicLong", "get"), ("MapObject", "size"), ("ListObject", "get")] {
        assert!(
            analysis.pure.entries.contains(&(ty.to_string(), m.to_string())),
            "expected {ty}::{m} proven pure; got {:?}",
            analysis.pure.entries
        );
    }
}
