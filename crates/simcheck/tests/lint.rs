//! Meta-test: runs the linter over the fixture tree and asserts the exact
//! set of findings, including that reasoned allow directives are honored
//! and reasonless ones are not.

use std::path::Path;

use simcheck::{lint_tree, Rule};

#[test]
fn fixture_tree_yields_exactly_the_planted_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree");
    let findings = lint_tree(&root).expect("walk fixtures");
    let mut got: Vec<(String, Rule)> = findings
        .iter()
        .map(|f| {
            let file = f.file.rsplit('/').next().unwrap_or(&f.file).to_string();
            (file, f.rule)
        })
        .collect();
    got.sort();
    let mut want = vec![
        ("bad_allow.rs".to_string(), Rule::BadAllow),
        ("bad_allow.rs".to_string(), Rule::WallClock),
        ("panics.rs".to_string(), Rule::NoPanic),
        ("panics.rs".to_string(), Rule::NoPanic),
        ("protocol.rs".to_string(), Rule::SerdeDerive),
        ("reconcile.rs".to_string(), Rule::WallClock),
        ("sneaky.rs".to_string(), Rule::ReadonlyMutation),
        ("threads.rs".to_string(), Rule::NativeThread),
        ("traced.rs".to_string(), Rule::TraceTime),
        ("wall.rs".to_string(), Rule::WallClock),
        ("wall.rs".to_string(), Rule::WallClock),
        ("wheel.rs".to_string(), Rule::WallClock),
    ];
    want.sort();
    assert_eq!(got, want, "full findings: {findings:#?}");
    // allowed.rs is covered by the absence of any finding for it above.
    assert!(!findings.iter().any(|f| f.file.contains("allowed.rs")));
}

#[test]
fn fixture_findings_carry_lines_and_messages() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree");
    let findings = lint_tree(&root).expect("walk fixtures");
    let sneaky = findings.iter().find(|f| f.rule == Rule::ReadonlyMutation).expect("planted");
    assert!(sneaky.msg.contains("peek"), "{}", sneaky.msg);
    let wall =
        findings.iter().filter(|f| f.file.contains("wall.rs")).map(|f| f.line).collect::<Vec<_>>();
    assert_eq!(wall, vec![5, 6], "one finding per offending line");
}

#[test]
fn allow_census_stays_at_three() {
    // Every `simlint: allow` escape hatch in shipped code, by file. The
    // census keeps the list deliberate: a new allow (or a directive that
    // stopped being needed) must update this test alongside its reason.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let files = simcheck::analyze::read_tree(&root).expect("walk crates");
    let mut allows: Vec<String> = Vec::new();
    for (path, src) in &files {
        for t in simcheck::lex::lex(src) {
            if !matches!(t.kind, simcheck::lex::TokKind::LineComment) {
                continue;
            }
            let body = t.text(src).trim_start_matches('/').trim();
            if body.starts_with("simlint: allow(") {
                // read_tree shows paths relative to the walk root's
                // parent; keep only the crate-relative tail.
                allows.push(path.trim_start_matches("../").to_string());
            }
        }
    }
    allows.sort();
    assert_eq!(
        allows,
        vec![
            "apps/ports/monte_carlo_local.rs".to_string(),
            "bench/src/bin/experiments.rs".to_string(),
            "bench/src/experiments/kernelbench.rs".to_string(),
        ],
        "unexpected allow census"
    );
}

#[test]
fn workspace_tree_is_clean() {
    // The real gate: the shipped sources must lint clean. Walking from the
    // crate's parent covers the whole `crates/` tree.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let findings = lint_tree(&root).expect("walk crates");
    assert!(
        findings.is_empty(),
        "workspace lint violations:\n{}",
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
