//! A compact, non-self-describing binary codec for [`serde`] values.
//!
//! The simulation ships method arguments and object state between
//! processes as byte payloads (method-call shipping, SMR state transfer,
//! marshalling of persistent objects). No serialization *format* crate is
//! available offline, so this module implements one: fixed-width
//! little-endian scalars, `u64` length prefixes, `u32` enum variant tags —
//! in the spirit of `bincode`.
//!
//! # Examples
//!
//! ```
//! use serde::{Serialize, Deserialize};
//! use simcore::codec;
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Point { x: f64, y: f64 }
//!
//! # fn main() -> Result<(), codec::CodecError> {
//! let p = Point { x: 1.0, y: -2.5 };
//! let bytes = codec::to_bytes(&p)?;
//! let q: Point = codec::from_bytes(&bytes)?;
//! assert_eq!(p, q);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Error produced by encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    msg: String,
}

impl CodecError {
    fn new(msg: impl Into<String>) -> CodecError {
        CodecError { msg: msg.into() }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.msg)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::new(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::new(msg.to_string())
    }
}

/// Encodes `value` to bytes.
///
/// # Errors
///
/// Returns an error for values the format cannot represent (e.g. sequences
/// of unknown length).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    to_bytes_into(value, &mut out)?;
    Ok(out)
}

/// Encodes `value` into `out`, reusing its capacity.
///
/// The hot-path variant of [`to_bytes`]: callers that encode in a loop
/// (request building, argument marshalling) keep one buffer and let it
/// plateau at the largest message size instead of allocating a fresh
/// `Vec` per encode. `out` is cleared first.
///
/// # Errors
///
/// Returns an error for values the format cannot represent (e.g. sequences
/// of unknown length); `out` may hold a partial encoding on error.
pub fn to_bytes_into<T: Serialize + ?Sized>(
    value: &T,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    out.clear();
    let mut ser = Encoder { out: std::mem::take(out) };
    let res = value.serialize(&mut ser);
    *out = ser.out;
    res
}

/// Decodes a `T` from bytes previously produced by [`to_bytes`].
///
/// # Errors
///
/// Returns an error on truncated or malformed input, or trailing bytes.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = Decoder { input: bytes };
    let v = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError::new(format!("{} trailing bytes after value", de.input.len())));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::new("sequences must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::new("maps must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! impl_compound_ser {
    ($trait:path, $method:ident $(, $key:ident)?) => {
        impl<'a> $trait for &'a mut Encoder {
            type Ok = ();
            type Error = CodecError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            $(
                fn $key<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                    value.serialize(&mut **self)
                }
            )?
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_compound_ser!(ser::SerializeSeq, serialize_element);
impl_compound_ser!(ser::SerializeTuple, serialize_element);
impl_compound_ser!(ser::SerializeTupleStruct, serialize_field);
impl_compound_ser!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::new(format!(
                "unexpected end of input: needed {n} bytes, had {}",
                self.input.len()
            )));
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let len = u64::from_le_bytes(b.try_into().expect("8 bytes"));
        if len > (1 << 40) {
            return Err(CodecError::new("implausible length prefix"));
        }
        Ok(len as usize)
    }
}

macro_rules! de_scalar {
    ($name:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().expect("sized")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::new("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError::new(format!("invalid bool byte {b}"))),
        }
    }

    de_scalar!(deserialize_i8, visit_i8, i8, 1);
    de_scalar!(deserialize_i16, visit_i16, i16, 2);
    de_scalar!(deserialize_i32, visit_i32, i32, 4);
    de_scalar!(deserialize_i64, visit_i64, i64, 8);
    de_scalar!(deserialize_i128, visit_i128, i128, 16);
    de_scalar!(deserialize_u8, visit_u8, u8, 1);
    de_scalar!(deserialize_u16, visit_u16, u16, 2);
    de_scalar!(deserialize_u32, visit_u32, u32, 4);
    de_scalar!(deserialize_u64, visit_u64, u64, 8);
    de_scalar!(deserialize_u128, visit_u128, u128, 16);
    de_scalar!(deserialize_f32, visit_f32, f32, 4);
    de_scalar!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        let code = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let c = char::from_u32(code)
            .ok_or_else(|| CodecError::new(format!("invalid char code {code}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let b = self.take(len)?;
        let s = std::str::from_utf8(b).map_err(|e| CodecError::new(e.to_string()))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let b = self.take(len)?;
        visitor.visit_borrowed_bytes(b)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError::new(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted { de: self, left: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::new("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::new("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    left: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let b = self.de.take(4)?;
        let idx = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self.de, left: len })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self.de, left: fields.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn scalars() {
        round_trip(true);
        round_trip(false);
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(-1i32);
        round_trip(3.5f32);
        round_trip(-0.25f64);
        round_trip('é');
        round_trip(123u128);
        round_trip(-5i128);
    }

    #[test]
    fn strings_and_containers() {
        round_trip(String::from("hello — κόσμος"));
        round_trip(String::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip(Some(7u16));
        round_trip(Option::<u16>::None);
        round_trip((1u8, String::from("x"), -3i64));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        round_trip(m);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Proto {
        Ping,
        Set { key: String, value: Vec<u8> },
        Pair(u32, u32),
        Wrap(Box<Proto>),
    }

    #[test]
    fn enums() {
        round_trip(Proto::Ping);
        round_trip(Proto::Set { key: "k".into(), value: vec![1, 2, 3] });
        round_trip(Proto::Pair(4, 5));
        round_trip(Proto::Wrap(Box::new(Proto::Ping)));
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        inner: Option<Box<Nested>>,
    }

    #[test]
    fn nested_structs() {
        round_trip(Nested {
            id: 1,
            tags: vec!["a".into(), "b".into()],
            inner: Some(Box::new(Nested { id: 2, tags: vec![], inner: None })),
        });
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&12345u64).expect("encode");
        let r: Result<u64, _> = from_bytes(&bytes[..4]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u8).expect("encode");
        bytes.push(0);
        let r: Result<u8, _> = from_bytes(&bytes);
        assert!(r.unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn invalid_bool_errors() {
        let r: Result<bool, _> = from_bytes(&[7]);
        assert!(r.is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let bytes = u64::MAX.to_le_bytes();
        let r: Result<Vec<u8>, _> = from_bytes(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn unit_type() {
        round_trip(());
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Marker;
        round_trip(Marker);
        assert!(to_bytes(&Marker).expect("encode").is_empty());
    }

    #[test]
    fn encoding_is_compact() {
        // 1 KB payload should encode as 8 (len) + 1024 bytes.
        let v = vec![0u8; 1024];
        assert_eq!(to_bytes(&v).expect("encode").len(), 1032);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum TreeNode {
        Leaf(i64),
        Branch(Box<TreeNode>, Box<TreeNode>),
        Tagged { name: String, values: Vec<f64> },
    }

    fn arb_tree() -> impl Strategy<Value = TreeNode> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(TreeNode::Leaf),
            ("[a-zA-Z]{0,12}", proptest::collection::vec(any::<f64>(), 0..6))
                .prop_map(|(name, values)| TreeNode::Tagged { name, values }),
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| TreeNode::Branch(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        /// Every value the format can express round-trips losslessly.
        #[test]
        fn round_trip_arbitrary_trees(t in arb_tree()) {
            let bytes = to_bytes(&t).expect("encode");
            let back: TreeNode = from_bytes(&bytes).expect("decode");
            // NaN-safe comparison through re-encoding.
            prop_assert_eq!(to_bytes(&back).expect("encode"), bytes);
        }

        #[test]
        fn round_trip_maps_and_options(
            m in proptest::collection::btree_map("[a-z]{1,8}", any::<u64>(), 0..16),
            o in proptest::option::of(any::<i32>()),
            v in proptest::collection::vec(any::<u16>(), 0..64),
        ) {
            let value: (BTreeMap<String, u64>, Option<i32>, Vec<u16>) = (m, o, v);
            let bytes = to_bytes(&value).expect("encode");
            let back: (BTreeMap<String, u64>, Option<i32>, Vec<u16>) =
                from_bytes(&bytes).expect("decode");
            prop_assert_eq!(back, value);
        }

        /// Decoding never panics on arbitrary garbage (it may error).
        #[test]
        fn decoder_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = from_bytes::<TreeNode>(&bytes);
            let _ = from_bytes::<Vec<String>>(&bytes);
            let _ = from_bytes::<(u64, bool, Option<f64>)>(&bytes);
        }
    }
}
