//! A shared CPU modeled as a processor-sharing resource.
//!
//! Used for the single-machine ("VM") baselines of the paper: when more
//! threads compute than the machine has cores, every thread slows down
//! proportionally (Fig. 3's m5.2xlarge/m5.4xlarge curves collapsing past
//! their core count).
//!
//! The model is generalized processor sharing: with `n` active jobs on `c`
//! cores, each job progresses at rate `min(1, c/n)`.

use std::time::Duration;

use crate::kernel::{Addr, Ctx, Request, Sim};

/// Request understood by a CPU host process.
#[derive(Debug, Clone, Copy)]
struct CpuReq {
    work: Duration,
}

/// Completion marker.
#[derive(Debug, Clone, Copy)]
struct CpuDone;

/// Handle to a shared CPU with a fixed number of cores.
///
/// # Examples
///
/// ```
/// use simcore::{Sim, CpuHost};
/// use std::time::Duration;
///
/// let mut sim = Sim::new(1);
/// let cpu = CpuHost::spawn(&sim, "vm", 2);
/// for i in 0..4 {
///     let cpu = cpu.clone();
///     sim.spawn(&format!("t{i}"), move |ctx| {
///         // 4 jobs of 1s on 2 cores take 2s of virtual time.
///         cpu.compute(ctx, Duration::from_secs(1));
///         assert_eq!(ctx.now().as_secs_f64(), 2.0);
///     });
/// }
/// sim.run_until_idle().expect_quiescent();
/// ```
#[derive(Clone, Debug)]
pub struct CpuHost {
    addr: Addr,
    cores: u32,
}

struct Job {
    reply_to: Addr,
    remaining: f64, // cpu-nanoseconds
}

impl CpuHost {
    /// Spawns the CPU manager process on `sim`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn spawn(sim: &Sim, name: &str, cores: u32) -> CpuHost {
        assert!(cores > 0, "a CPU needs at least one core");
        let addr = sim.mailbox(&format!("{name}-cpu"));
        sim.spawn_daemon(&format!("{name}-cpu"), move |ctx| {
            cpu_loop(ctx, addr, cores);
        });
        CpuHost { addr, cores }
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Performs `work` of CPU time on this machine, blocking until done.
    /// Under contention the elapsed virtual time exceeds `work`.
    pub fn compute(&self, ctx: &mut Ctx, work: Duration) {
        if work.is_zero() {
            return;
        }
        // Under contention this parks behind other jobs; give the deadlock
        // detector the CPU mailbox as the waited-on resource.
        ctx.annotate_wait(self.addr.into_raw(), crate::WaitKind::Call, "cpu", "CpuHost::compute");
        let CpuDone = ctx.call(self.addr, CpuReq { work }, Duration::ZERO);
    }
}

fn cpu_loop(ctx: &mut Ctx, inbox: Addr, cores: u32) {
    let mut jobs: Vec<Job> = Vec::new();
    let mut last = ctx.now();
    loop {
        let rate = if jobs.is_empty() { 0.0 } else { (cores as f64 / jobs.len() as f64).min(1.0) };
        // Next completion among active jobs at the current rate.
        let next_done: Option<Duration> = if jobs.is_empty() {
            None
        } else {
            let min_remaining = jobs.iter().map(|j| j.remaining).fold(f64::INFINITY, f64::min);
            Some(Duration::from_nanos((min_remaining / rate).ceil() as u64))
        };
        let msg = match next_done {
            None => Some(ctx.recv(inbox)),
            Some(d) => ctx.recv_timeout(inbox, d),
        };
        // Account the progress made since the last wake-up.
        let now = ctx.now();
        let elapsed = now.saturating_duration_since(last).as_nanos() as f64;
        last = now;
        if rate > 0.0 {
            for j in &mut jobs {
                j.remaining -= elapsed * rate;
            }
        }
        // Release finished jobs (allowing sub-nanosecond residue).
        let mut i = 0;
        while i < jobs.len() {
            if jobs[i].remaining <= 0.5 {
                let j = jobs.swap_remove(i);
                ctx.reply(j.reply_to, CpuDone, Duration::ZERO);
            } else {
                i += 1;
            }
        }
        if let Some(m) = msg {
            let (reply_to, req) = m.take::<Request>().take::<CpuReq>();
            jobs.push(Job { reply_to, remaining: req.work.as_nanos() as f64 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn single_job_takes_exactly_its_work() {
        let mut sim = Sim::new(1);
        let cpu = CpuHost::spawn(&sim, "m", 4);
        sim.spawn("t", move |ctx| {
            cpu.compute(ctx, Duration::from_millis(10));
            assert_eq!(ctx.now(), SimTime::from_millis(10));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn underloaded_jobs_run_at_full_speed() {
        let mut sim = Sim::new(1);
        let cpu = CpuHost::spawn(&sim, "m", 4);
        for i in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                cpu.compute(ctx, Duration::from_millis(10));
                assert_eq!(ctx.now(), SimTime::from_millis(10));
            });
        }
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn overloaded_jobs_slow_down_proportionally() {
        let mut sim = Sim::new(1);
        let cpu = CpuHost::spawn(&sim, "m", 2);
        let ends: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let cpu = cpu.clone();
            let ends = ends.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                cpu.compute(ctx, Duration::from_secs(1));
                ends.lock().push(ctx.now().as_secs_f64());
            });
        }
        sim.run_until_idle().expect_quiescent();
        let ends = ends.lock();
        assert_eq!(ends.len(), 8);
        // 8 equal jobs on 2 cores: all finish together at 4s.
        for e in ends.iter() {
            assert!((e - 4.0).abs() < 1e-6, "end={e}");
        }
    }

    #[test]
    fn staggered_arrivals_share_fairly() {
        let mut sim = Sim::new(1);
        let cpu = CpuHost::spawn(&sim, "m", 1);
        let ends: Arc<Mutex<Vec<(String, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        // Job A: 2s of work starting at t=0.
        {
            let cpu = cpu.clone();
            let ends = ends.clone();
            sim.spawn("a", move |ctx| {
                cpu.compute(ctx, Duration::from_secs(2));
                ends.lock().push(("a".into(), ctx.now().as_secs_f64()));
            });
        }
        // Job B: 1s of work starting at t=1.
        {
            let cpu = cpu.clone();
            let ends = ends.clone();
            sim.spawn("b", move |ctx| {
                ctx.sleep(Duration::from_secs(1));
                cpu.compute(ctx, Duration::from_secs(1));
                ends.lock().push(("b".into(), ctx.now().as_secs_f64()));
            });
        }
        sim.run_until_idle().expect_quiescent();
        let ends = ends.lock();
        // A runs alone 0..1 (1s done), then shares 50/50. A has 1s left,
        // B has 1s: both finish at t=3.
        for (name, e) in ends.iter() {
            assert!((e - 3.0).abs() < 1e-6, "{name} ended at {e}");
        }
    }

    #[test]
    fn zero_work_returns_immediately() {
        let mut sim = Sim::new(1);
        let cpu = CpuHost::spawn(&sim, "m", 1);
        sim.spawn("t", move |ctx| {
            cpu.compute(ctx, Duration::ZERO);
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let sim = Sim::new(1);
        let _ = CpuHost::spawn(&sim, "m", 0);
    }
}
