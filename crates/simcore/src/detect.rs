//! Runtime deadlock and lost-wakeup detection.
//!
//! In a discrete-event simulation there is no "maybe it will wake up
//! later": when [`crate::Sim::run_until_idle`] returns with live blocked
//! processes, those processes are stuck *forever* — no pending event can
//! ever make them runnable. That turns deadlock detection from a heuristic
//! into an exact postmortem: [`crate::Sim::deadlock_report`] inspects the
//! blocked processes, builds a wait-for graph from the wait annotations the
//! synchronization primitives registered ([`crate::Ctx::annotate_wait`] /
//! [`crate::Ctx::resource_acquired`]), and classifies the outcome:
//!
//! - **cycles** — classic deadlock: each process in the cycle waits on
//!   something only the next one could provide (a lock it holds, a barrier
//!   it has not reached, a reply it will never send);
//! - **lost wakeups** — a process waiting on a condition, semaphore or
//!   message that no live process can ever signal (the wakeup already
//!   happened or was skipped);
//! - **stuck** — every blocked process, with its wait annotation, for
//!   manual triage.
//!
//! Each report carries the simulation seed and the scheduler's
//! [`Decision`] trace, so a failing schedule found by [`crate::explore`]
//! can be replayed exactly (see the module docs there).

use std::collections::HashMap;
use std::fmt;

use crate::kernel::{Pid, Sim};
use crate::scheduler::Decision;
use crate::time::SimTime;

/// What kind of thing a blocked process is waiting for.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// Entry into a mutex/monitor another process holds.
    Lock,
    /// A condition-variable style notification.
    Condition,
    /// Other parties arriving at a barrier.
    Barrier,
    /// Permits on a (possibly remote) semaphore.
    Semaphore,
    /// A reply to a blocking remote call.
    Call,
    /// A plain message delivery.
    Message,
}

impl fmt::Display for WaitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WaitKind::Lock => "lock",
            WaitKind::Condition => "condition",
            WaitKind::Barrier => "barrier",
            WaitKind::Semaphore => "semaphore",
            WaitKind::Call => "call",
            WaitKind::Message => "message",
        };
        f.write_str(s)
    }
}

/// A wait annotation attached to a blocked process by a synchronization
/// primitive just before it blocked.
#[derive(Clone, Debug)]
pub struct WaitAnnotation {
    /// Identity of the awaited resource (e.g. the address of the primitive's
    /// shared state, or a shared object's placement hash).
    pub resource: u64,
    /// Human-readable name of the resource (monitor name, object ref…).
    pub resource_name: String,
    /// What kind of wait this is.
    pub kind: WaitKind,
    /// Where the process blocked — the "task backtrace" entry for reports.
    pub site: String,
}

/// A live process that can never run again, as it appears in a
/// [`DeadlockReport`].
#[derive(Clone, Debug)]
pub struct StuckProc {
    /// The process id.
    pub pid: Pid,
    /// The process name.
    pub name: String,
    /// How the kernel sees it blocked (`"parked"`, `"receiving"`, …).
    pub block_state: String,
    /// The wait annotation, if the blocking primitive registered one.
    pub wait: Option<WaitAnnotation>,
}

impl StuckProc {
    fn describe(&self) -> String {
        match &self.wait {
            Some(w) => {
                format!("{} [{} \"{}\" @ {}]", self.name, w.kind, w.resource_name, w.site)
            }
            None => format!("{} [{}]", self.name, self.block_state),
        }
    }
}

/// Postmortem of a deadlocked simulation.
///
/// Produced by [`crate::Sim::deadlock_report`] after a run left live
/// processes permanently blocked. `Display` renders the full report,
/// including the reproduction recipe.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// The simulation seed (reproduces the run together with the scheduler).
    pub seed: u64,
    /// Virtual time at which the simulation wedged.
    pub time: SimTime,
    /// Wait-for cycles: each entry is a ring of processes in which every
    /// process waits on the next one.
    pub cycles: Vec<Vec<StuckProc>>,
    /// Processes whose wakeup can never arrive (no holder, no live waker).
    pub lost_wakeups: Vec<StuckProc>,
    /// All permanently blocked processes.
    pub stuck: Vec<StuckProc>,
    /// The scheduler decision trace of the run; replaying these choices
    /// (see [`crate::scheduler::ReplayScheduler`]) reproduces the schedule.
    pub decisions: Vec<Decision>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock at {} (seed {}): {} process(es) blocked forever",
            self.time,
            self.seed,
            self.stuck.len()
        )?;
        for cycle in &self.cycles {
            let ring: Vec<String> = cycle.iter().map(StuckProc::describe).collect();
            writeln!(f, "  wait-for cycle: {} -> (back to start)", ring.join(" -> "))?;
        }
        for p in &self.lost_wakeups {
            writeln!(f, "  lost wakeup: {} — no live process can wake it", p.describe())?;
        }
        for p in &self.stuck {
            writeln!(f, "  stuck: {}", p.describe())?;
        }
        let choices: Vec<String> = self.decisions.iter().map(|d| d.choice.to_string()).collect();
        write!(
            f,
            "  reproduce: RandomScheduler seed {} (or ReplayScheduler prefix [{}])",
            self.seed,
            choices.join(",")
        )
    }
}

impl Sim {
    /// Builds a [`DeadlockReport`] for the current set of permanently
    /// blocked processes, or `None` if no non-daemon process is blocked.
    ///
    /// Meaningful after [`Sim::run_until_idle`] returned a non-empty
    /// [`crate::RunOutcome::blocked`] list: at that point the blocked
    /// processes can never run again.
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        let (time, stuck, holders) = self.stuck_snapshot();
        if stuck.is_empty() {
            return None;
        }
        let edges = wait_for_edges(&stuck, &holders);
        let cycles = find_cycles(&stuck, &edges);
        let in_cycle: Vec<bool> =
            (0..stuck.len()).map(|i| cycles.iter().any(|c| c.contains(&i))).collect();
        let lost_wakeups: Vec<StuckProc> = stuck
            .iter()
            .enumerate()
            .filter(|(i, p)| edges[*i].is_empty() && !in_cycle[*i] && p.wait.is_some())
            .map(|(_, p)| p.clone())
            .collect();
        Some(DeadlockReport {
            seed: self.seed(),
            time,
            cycles: cycles
                .into_iter()
                .map(|c| c.into_iter().map(|i| stuck[i].clone()).collect())
                .collect(),
            lost_wakeups,
            stuck,
            decisions: self.decision_trace(),
        })
    }
}

/// Builds the wait-for adjacency list over `stuck` (indices into it).
///
/// A lock/semaphore waiter points at the registered holder of its resource
/// (if that holder is itself stuck). Waits without a trackable holder —
/// conditions, barriers, calls, messages — point at every *other* stuck
/// process that is not blocked on the same resource: any of them could in
/// principle have delivered the wakeup, and none of them ever will.
fn wait_for_edges(stuck: &[StuckProc], holders: &HashMap<u64, (Pid, String)>) -> Vec<Vec<usize>> {
    let index_of: HashMap<Pid, usize> = stuck.iter().enumerate().map(|(i, p)| (p.pid, i)).collect();
    stuck
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let held_edge = p.wait.as_ref().and_then(|w| {
                if matches!(w.kind, WaitKind::Lock | WaitKind::Semaphore) {
                    holders.get(&w.resource).and_then(|(h, _)| index_of.get(h)).copied()
                } else {
                    None
                }
            });
            if let Some(j) = held_edge {
                if j != i {
                    return vec![j];
                }
            }
            // No trackable holder: any other stuck process not waiting on
            // the same resource is a candidate (never-arriving) waker.
            let my_res = p.wait.as_ref().map(|w| w.resource);
            stuck
                .iter()
                .enumerate()
                .filter(|(j, q)| {
                    *j != i
                        && match (my_res, q.wait.as_ref().map(|w| w.resource)) {
                            (Some(a), Some(b)) => a != b,
                            _ => true,
                        }
                })
                .map(|(j, _)| j)
                .collect()
        })
        .collect()
}

/// Finds elementary wait-for cycles by DFS, deduplicated by member set.
fn find_cycles(stuck: &[StuckProc], edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = stuck.len();
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut seen_sets: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        // Iterative DFS from `start`, tracking the path to extract cycles.
        let mut path: Vec<usize> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        while let Some(&node) = path.last() {
            let it = *iters.last().expect("parallel stacks");
            if it >= edges[node].len() {
                path.pop();
                iters.pop();
                continue;
            }
            *iters.last_mut().expect("parallel stacks") += 1;
            let next = edges[node][it];
            if next == start {
                let mut key = path.clone();
                key.sort_unstable();
                key.dedup();
                if !seen_sets.contains(&key) {
                    seen_sets.push(key);
                    cycles.push(path.clone());
                }
            } else if !path.contains(&next) && next > start {
                // Only descend into larger indices so each cycle is found
                // once, rooted at its smallest member.
                path.push(next);
                iters.push(0);
            }
            if cycles.len() >= 8 {
                return cycles; // cap: reports stay readable
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(pid: u64, name: &str, wait: Option<WaitAnnotation>) -> StuckProc {
        StuckProc { pid: Pid(pid), name: name.into(), block_state: "parked".into(), wait }
    }

    fn ann(resource: u64, kind: WaitKind) -> WaitAnnotation {
        WaitAnnotation {
            resource,
            resource_name: format!("r{resource}"),
            kind,
            site: "test".into(),
        }
    }

    #[test]
    fn lock_cycle_via_holders() {
        // p0 waits for lock 2 held by p1; p1 waits for lock 1 held by p0.
        let stuck = vec![
            sp(0, "a", Some(ann(2, WaitKind::Lock))),
            sp(1, "b", Some(ann(1, WaitKind::Lock))),
        ];
        let mut holders = HashMap::new();
        holders.insert(1u64, (Pid(0), "r1".to_string()));
        holders.insert(2u64, (Pid(1), "r2".to_string()));
        let edges = wait_for_edges(&stuck, &holders);
        assert_eq!(edges, vec![vec![1], vec![0]]);
        let cycles = find_cycles(&stuck, &edges);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn crossed_barriers_form_cycle() {
        // Two processes waiting on *different* barriers: each is the only
        // process that could have released the other.
        let stuck = vec![
            sp(0, "a", Some(ann(10, WaitKind::Barrier))),
            sp(1, "b", Some(ann(11, WaitKind::Barrier))),
        ];
        let edges = wait_for_edges(&stuck, &HashMap::new());
        let cycles = find_cycles(&stuck, &edges);
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn same_resource_waiters_are_not_a_cycle() {
        // Two processes on the same under-subscribed barrier: no cycle,
        // both are lost wakeups (nobody left to arrive).
        let stuck = vec![
            sp(0, "a", Some(ann(10, WaitKind::Barrier))),
            sp(1, "b", Some(ann(10, WaitKind::Barrier))),
        ];
        let edges = wait_for_edges(&stuck, &HashMap::new());
        assert!(edges.iter().all(Vec::is_empty));
        assert!(find_cycles(&stuck, &edges).is_empty());
    }

    #[test]
    fn lone_semaphore_waiter_is_lost_wakeup_shape() {
        let stuck = vec![sp(0, "w", Some(ann(5, WaitKind::Semaphore)))];
        let edges = wait_for_edges(&stuck, &HashMap::new());
        assert_eq!(edges, vec![Vec::<usize>::new()]);
    }
}
