//! Schedule exploration: run one scenario under many schedules.
//!
//! A deterministic simulation hides schedule-dependent bugs behind its
//! determinism — the default FIFO tie-breaking is just *one* of the many
//! orders a real platform could produce. The explorer re-runs a scenario
//! under perturbed schedules and reports every one that deadlocks, panics,
//! or fails the scenario's own check:
//!
//! - [`explore_seeds`] sweeps `n` seeds of
//!   [`crate::scheduler::RandomScheduler`] — cheap, broad coverage;
//! - [`explore_exhaustive`] enumerates schedules by branching on recorded
//!   scheduling decisions (a bounded, DPOR-lite depth-first search over
//!   choice prefixes with [`crate::scheduler::ReplayScheduler`]) — small
//!   scenarios can be covered exhaustively.
//!
//! A scenario is a closure that spawns processes on a fresh [`Sim`] and
//! returns a *check*: a closure run after the simulation goes quiescent
//! (e.g. feeding recorded operation histories to a linearizability
//! checker). Each failure carries the seed and, for deadlocks, a full
//! [`DeadlockReport`] with the decision trace — see [`replay_seed`] for
//! reproducing one.
//!
//! # Examples
//!
//! ```
//! use simcore::explore::{explore_seeds, ScheduleFailure};
//! use std::time::Duration;
//!
//! // A racy check-then-wait: the waiter decides to wait, *then* blocks for
//! // a moment before actually waiting. If the setter's one-shot notify
//! // lands in that gap, the wakeup is lost.
//! let report = explore_seeds(0, 16, |sim| {
//!     let flag = std::sync::Arc::new(parking_lot::Mutex::new(false));
//!     let m = simcore::sync::Monitor::new("m");
//!     let (m2, flag2) = (m.clone(), flag.clone());
//!     sim.spawn("setter", move |ctx| {
//!         m2.enter(ctx);
//!         *flag2.lock() = true;
//!         m2.notify(ctx);
//!         m2.exit(ctx);
//!     });
//!     sim.spawn("waiter", move |ctx| {
//!         if !*flag.lock() {
//!             ctx.sleep(Duration::from_micros(1)); // gap between check and wait
//!             m.enter(ctx);
//!             m.wait(ctx);
//!             m.exit(ctx);
//!         }
//!     });
//!     Box::new(|| Ok(()))
//! });
//! // Some schedule loses the wakeup and deadlocks; others are clean.
//! assert!(report.failures.iter().any(|f| matches!(f.failure, ScheduleFailure::Deadlock(_))));
//! assert!(report.failures.len() < report.explored);
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::detect::DeadlockReport;
use crate::kernel::Sim;
use crate::scheduler::{RandomScheduler, ReplayScheduler};

/// A post-quiescence check produced by a scenario: `Ok(())` when the
/// schedule's outcome is acceptable, `Err(msg)` otherwise.
pub type Check = Box<dyn FnOnce() -> Result<(), String>>;

/// A scenario: spawns processes on a fresh [`Sim`] and returns the check to
/// run once that simulation is quiescent. Called once per explored schedule.
pub trait Scenario: Fn(&mut Sim) -> Check {}
impl<F: Fn(&mut Sim) -> Check> Scenario for F {}

/// Why one explored schedule failed.
pub enum ScheduleFailure {
    /// The simulation wedged; the report names cycles and lost wakeups.
    Deadlock(Box<DeadlockReport>),
    /// A process panicked during the run.
    Panic(String),
    /// The scenario's own post-run check rejected the outcome.
    Check(String),
}

impl fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleFailure::Deadlock(r) => write!(f, "{r}"),
            ScheduleFailure::Panic(m) => write!(f, "panic: {m}"),
            ScheduleFailure::Check(m) => write!(f, "check failed: {m}"),
        }
    }
}

impl fmt::Debug for ScheduleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// One failing schedule: how to re-create it, and what went wrong.
#[derive(Debug)]
pub struct FailedSchedule {
    /// The simulation seed of the failing run.
    pub seed: u64,
    /// The replay prefix the run was started with (empty for seed sweeps;
    /// deadlock reports carry the *full* decision trace either way).
    pub prefix: Vec<u32>,
    /// The failure itself.
    pub failure: ScheduleFailure,
}

/// Outcome of an exploration sweep.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Number of schedules executed.
    pub explored: usize,
    /// Every schedule that failed.
    pub failures: Vec<FailedSchedule>,
}

impl ExploreReport {
    /// Whether every explored schedule was clean.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Panics with the rendered report if any schedule failed.
    ///
    /// # Panics
    ///
    /// Panics when [`ExploreReport::is_clean`] is false.
    pub fn expect_clean(&self) {
        assert!(self.is_clean(), "schedule exploration failed:\n{self}");
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "explored {} schedule(s), {} failure(s)", self.explored, self.failures.len())?;
        for fs in &self.failures {
            write!(f, "\nseed {}", fs.seed)?;
            if !fs.prefix.is_empty() {
                let p: Vec<String> = fs.prefix.iter().map(u32::to_string).collect();
                write!(f, " prefix [{}]", p.join(","))?;
            }
            write!(f, ": {}", fs.failure)?;
        }
        Ok(())
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `scenario` on `sim` to quiescence and classifies the outcome.
/// Returns the decision trace choices alongside, for exhaustive branching.
fn run_schedule(
    mut sim: Sim,
    scenario: &impl Scenario,
) -> (Option<ScheduleFailure>, Vec<crate::scheduler::Decision>) {
    let check = scenario(&mut sim);
    let outcome = catch_unwind(AssertUnwindSafe(|| sim.run_until_idle()));
    let decisions = sim.decision_trace();
    let failure = match outcome {
        Err(p) => Some(ScheduleFailure::Panic(panic_message(p))),
        Ok(out) if !out.blocked.is_empty() => {
            let report = sim.deadlock_report().unwrap_or(DeadlockReport {
                seed: sim.seed(),
                time: out.time,
                cycles: Vec::new(),
                lost_wakeups: Vec::new(),
                stuck: Vec::new(),
                decisions: decisions.clone(),
            });
            Some(ScheduleFailure::Deadlock(Box::new(report)))
        }
        Ok(_) => {
            drop(sim); // join process threads before inspecting histories
            match catch_unwind(AssertUnwindSafe(check)) {
                Ok(Ok(())) => None,
                Ok(Err(m)) => Some(ScheduleFailure::Check(m)),
                Err(p) => Some(ScheduleFailure::Check(panic_message(p))),
            }
        }
    };
    (failure, decisions)
}

/// Runs `scenario` under `n` random schedules seeded `base_seed..base_seed+n`.
pub fn explore_seeds(base_seed: u64, n: u64, scenario: impl Scenario) -> ExploreReport {
    let mut report = ExploreReport::default();
    for i in 0..n {
        let seed = base_seed.wrapping_add(i);
        let sim = Sim::with_scheduler(seed, Box::new(RandomScheduler::new(seed)));
        let (failure, _) = run_schedule(sim, &scenario);
        report.explored += 1;
        if let Some(failure) = failure {
            report.failures.push(FailedSchedule { seed, prefix: Vec::new(), failure });
        }
    }
    report
}

/// Re-runs `scenario` under the random schedule for `seed` (as produced by
/// [`explore_seeds`]) and returns its failure, if it still fails.
pub fn replay_seed(seed: u64, scenario: impl Scenario) -> Option<ScheduleFailure> {
    let sim = Sim::with_scheduler(seed, Box::new(RandomScheduler::new(seed)));
    run_schedule(sim, &scenario).0
}

/// Bounded-exhaustive exploration (DPOR-lite): depth-first search over
/// scheduling-decision prefixes.
///
/// The first run uses an empty prefix (pure FIFO). After each run, every
/// decision point within the first `max_depth` decisions spawns sibling
/// prefixes that force the untaken choices; exploration stops after
/// `max_schedules` runs. With generous bounds and a small scenario this
/// covers *every* schedule distinguishable by runnable-queue order.
pub fn explore_exhaustive(
    seed: u64,
    max_schedules: usize,
    max_depth: usize,
    scenario: impl Scenario,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if report.explored >= max_schedules {
            break;
        }
        let sim = Sim::with_scheduler(seed, Box::new(ReplayScheduler::new(prefix.clone())));
        let (failure, decisions) = run_schedule(sim, &scenario);
        report.explored += 1;
        if let Some(failure) = failure {
            report.failures.push(FailedSchedule { seed, prefix: prefix.clone(), failure });
        }
        // Branch on every decision beyond the pinned prefix, up to the
        // depth bound: force each untaken choice once.
        for (i, d) in decisions
            .iter()
            .enumerate()
            .skip(prefix.len())
            .take(max_depth.saturating_sub(prefix.len()))
        {
            for alt in 0..d.options {
                if alt != d.choice {
                    let mut child: Vec<u32> = decisions[..i].iter().map(|d| d.choice).collect();
                    child.push(alt);
                    stack.push(child);
                }
            }
        }
    }
    report
}
