//! The discrete-event simulation kernel.
//!
//! Every simulated process runs on its own OS thread, but the kernel hands
//! out a single *run token*: exactly one process (or the kernel itself)
//! executes at any moment. Blocking operations — [`Ctx::sleep`],
//! [`Ctx::recv`], [`Ctx::call`] — park the calling thread and return the
//! token to the kernel, which advances the virtual clock to the next event.
//!
//! Because only one process runs at a time and ties are broken by event
//! sequence numbers, a simulation is **fully deterministic** for a given
//! seed, while application code stays plain imperative Rust (no async).

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::detect::{StuckProc, WaitAnnotation, WaitKind};
use crate::metrics::MetricsRegistry;
use crate::scheduler::{Decision, FifoScheduler, Scheduler};
use crate::time::SimTime;
use crate::trace::{SpanId, TraceCtx, Tracer};
use crate::wheel::{EventQueueStats, TimingWheel};

/// Identifier of a simulated process.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub(crate) u64);

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Address of a mailbox; the unit of message delivery.
///
/// An `Addr` can be freely cloned and shared between processes; anyone can
/// send to it, while receiving is reserved for one process at a time.
/// Addresses serialize as their raw id, so service handles can travel
/// inside function payloads (like connection strings in Lambda env vars).
#[derive(
    Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Addr(pub(crate) u64);

impl Addr {
    /// Reconstructs an address from its raw id.
    ///
    /// Only meaningful for ids previously obtained from [`Addr::into_raw`];
    /// mainly useful in tests and tables keyed by raw ids.
    pub fn from_raw(id: u64) -> Addr {
        Addr(id)
    }

    /// The raw mailbox id behind this address.
    pub fn into_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({})", self.0)
    }
}

/// A message in flight or delivered to a mailbox.
pub struct Msg {
    /// The payload. Downcast it with [`Msg::take`].
    pub body: Box<dyn Any + Send>,
    /// Simulated wire size in bytes (used by bandwidth-aware models).
    pub size: usize,
}

impl Msg {
    /// Creates a message with a zero simulated size.
    pub fn new<T: Any + Send>(body: T) -> Msg {
        Msg { body: Box::new(body), size: 0 }
    }

    /// Creates a message carrying a simulated wire size.
    pub fn sized<T: Any + Send>(body: T, size: usize) -> Msg {
        Msg { body: Box::new(body), size }
    }

    /// Downcasts the payload to `T`.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a `T`; message types are part of each
    /// service's protocol, so a mismatch is a programming error.
    pub fn take<T: Any>(self) -> T {
        *self
            .body
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("message downcast to {} failed", std::any::type_name::<T>()))
    }

    /// Attempts to downcast the payload to `T`, returning `self` on failure.
    pub fn try_take<T: Any>(self) -> Result<T, Msg> {
        let size = self.size;
        match self.body.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(body) => Err(Msg { body, size }),
        }
    }

    /// Whether the payload is a `T` (without consuming the message).
    pub fn is<T: Any>(&self) -> bool {
        self.body.is::<T>()
    }
}

impl fmt::Debug for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Msg").field("size", &self.size).finish_non_exhaustive()
    }
}

/// RPC envelope: a request carrying the address to reply to.
///
/// Servers receive `Request` values from their mailbox, handle
/// `body`, and reply by sending the response to `reply_to` — immediately or
/// later (deferred replies are how server-side synchronization objects such
/// as barriers release their waiters).
pub struct Request {
    /// Where the caller is waiting for the response.
    pub reply_to: Addr,
    /// The request payload; downcast to the protocol type.
    pub body: Box<dyn Any + Send>,
}

impl Request {
    /// Downcasts the request payload.
    ///
    /// # Panics
    ///
    /// Panics if the payload is not a `T`.
    pub fn take<T: Any>(self) -> (Addr, T) {
        let reply_to = self.reply_to;
        let body = *self.body.downcast::<T>().unwrap_or_else(|_| {
            panic!("request downcast to {} failed", std::any::type_name::<T>())
        });
        (reply_to, body)
    }
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Request").field("reply_to", &self.reply_to).finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

enum EventKind {
    /// Wake a process blocked in `sleep`, or time out a blocked `recv`.
    Wake { pid: Pid, epoch: u64 },
    /// Deliver a message to a mailbox.
    Deliver { mailbox: u64, msg: Msg },
}

/// How long (in virtual time) `run_until_idle` keeps firing events that
/// cannot directly wake a non-daemon process after the last non-daemon ran.
/// Past this, the surviving processes are wedged: only daemon housekeeping
/// (heartbeats, pollers) is left, and none of it can free them. Daemon
/// request/reply chains serving a blocked client stay well under this.
const STALL_LIMIT: Duration = Duration::from_secs(60);

/// Whether firing this event can directly hand progress to a non-daemon
/// process: a wake for a live non-daemon (sleep or recv timeout), or a
/// delivery to a mailbox a non-daemon is blocked on. Such events are
/// exempt from the stall cutoff in `run_inner` — a client sleeping for an
/// hour is idle, not wedged.
///
/// A free function over the individual tables (rather than a
/// `KernelState` method) so `run_inner` can consult it while the event
/// queue is borrowed by `peek`.
fn event_can_progress(
    procs: &HashMap<u64, ProcSlot>,
    mailboxes: &HashMap<u64, MailboxState>,
    kind: &EventKind,
) -> bool {
    match kind {
        EventKind::Wake { pid, .. } => procs.get(&pid.0).is_some_and(|p| !p.daemon),
        EventKind::Deliver { mailbox, .. } => mailboxes
            .get(mailbox)
            .and_then(|mb| mb.waiting)
            .and_then(|pid| procs.get(&pid.0))
            .is_some_and(|p| !p.daemon),
    }
}

// ---------------------------------------------------------------------------
// Gates (token handoff)
// ---------------------------------------------------------------------------

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum RunCmd {
    Park,
    Run,
    Exit,
}

struct ProcGate {
    cmd: Mutex<RunCmd>,
    cv: Condvar,
    /// Whether this process currently holds the run token.
    held: AtomicBool,
}

impl ProcGate {
    fn new() -> Arc<ProcGate> {
        Arc::new(ProcGate {
            cmd: Mutex::new(RunCmd::Park),
            cv: Condvar::new(),
            held: AtomicBool::new(false),
        })
    }

    /// Blocks until the kernel grants the token (`Run`) or requests
    /// termination (`Exit`).
    fn wait_for_run(&self) -> RunCmd {
        let mut cmd = self.cmd.lock();
        while *cmd == RunCmd::Park {
            self.cv.wait(&mut cmd);
        }
        let got = *cmd;
        if got == RunCmd::Run {
            *cmd = RunCmd::Park;
            self.held.store(true, Ordering::SeqCst);
        }
        got
    }

    fn set(&self, c: RunCmd) {
        let mut cmd = self.cmd.lock();
        *cmd = c;
        self.cv.notify_one();
    }
}

struct KernelGate {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl KernelGate {
    fn signal(&self) {
        let mut f = self.flag.lock();
        *f = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut f = self.flag.lock();
        while !*f {
            self.cv.wait(&mut f);
        }
        *f = false;
    }
}

/// Panic payload used to unwind process threads on shutdown/kill.
struct ShutdownSignal;

// ---------------------------------------------------------------------------
// Kernel state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum BlockState {
    Runnable,
    Sleeping,
    Receiving { mailbox: u64 },
    Parked,
    Exited,
}

struct ProcSlot {
    name: String,
    gate: Arc<ProcGate>,
    join: Option<std::thread::JoinHandle<()>>,
    blocked: BlockState,
    epoch: u64,
    delivered: Option<Msg>,
    killed: bool,
    park_permit: bool,
    /// Daemon processes (long-lived services) are excluded from the
    /// blocked-process report: a quiescent simulation with only daemons
    /// waiting for requests is not a deadlock.
    daemon: bool,
    /// What this process is blocked on, as registered by the blocking
    /// primitive via [`Ctx::annotate_wait`]; cleared on wakeup. Feeds the
    /// wait-for graph in [`crate::detect`].
    waiting_on: Option<WaitAnnotation>,
}

struct MailboxState {
    name: String,
    owner: Option<Pid>,
    queue: VecDeque<Msg>,
    waiting: Option<Pid>,
    closed: bool,
}

pub(crate) struct KernelState {
    now: SimTime,
    next_seq: u64,
    events: TimingWheel<EventKind>,
    procs: HashMap<u64, ProcSlot>,
    runnable: VecDeque<Pid>,
    mailboxes: HashMap<u64, MailboxState>,
    next_pid: u64,
    next_mailbox: u64,
    panic: Option<Box<dyn Any + Send>>,
    live: usize,
    live_nondaemon: usize,
    trace: bool,
    /// Picks the next runnable process when several are ready at once.
    scheduler: Box<dyn Scheduler>,
    /// Every contended pick, in order; replaying these choices reproduces
    /// the schedule (see [`crate::scheduler::ReplayScheduler`]).
    decisions: Vec<Decision>,
    /// Current holder of each annotated resource (`resource id -> (pid,
    /// name)`), maintained by [`Ctx::resource_acquired`] and friends.
    holders: HashMap<u64, (Pid, String)>,
    /// Virtual time a non-daemon process last received the run token; the
    /// stall detector in `run_inner` keys off this.
    last_nondaemon_run: SimTime,
    /// Span collector, if observability is enabled ([`Sim::set_tracer`]).
    /// `None` makes every `Ctx::span_*` call a no-op.
    tracer: Option<Tracer>,
    /// Metric sink, if installed ([`Sim::set_metrics`]); `None` makes every
    /// `Ctx::metric_*` call a no-op.
    metrics: Option<MetricsRegistry>,
}

impl KernelState {
    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(time, seq, kind);
    }

    fn make_runnable(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid.0) {
            if p.blocked != BlockState::Exited && p.blocked != BlockState::Runnable {
                p.blocked = BlockState::Runnable;
                p.waiting_on = None; // the wait ended
                self.runnable.push_back(pid);
            }
        }
    }

    /// Removes the next process to run from the runnable queue. Contended
    /// picks (≥ 2 candidates) go through the scheduler and are recorded in
    /// the decision trace.
    fn pick_runnable(&mut self) -> Option<Pid> {
        match self.runnable.len() {
            0 => None,
            1 => self.runnable.pop_front(),
            n => {
                let snapshot: Vec<Pid> = self.runnable.iter().copied().collect();
                let idx = self.scheduler.pick(&snapshot).min(n - 1);
                self.decisions.push(Decision { options: n as u32, choice: idx as u32 });
                self.runnable.remove(idx)
            }
        }
    }

    fn apply_event(&mut self, kind: EventKind) {
        match kind {
            EventKind::Wake { pid, epoch } => {
                let wake = match self.procs.get(&pid.0) {
                    Some(p) => {
                        p.epoch == epoch
                            && matches!(
                                p.blocked,
                                BlockState::Sleeping | BlockState::Receiving { .. }
                            )
                    }
                    None => false,
                };
                if wake {
                    // A recv timeout leaves `delivered` empty — the receiver
                    // interprets that as expiry.
                    self.make_runnable(pid);
                }
            }
            EventKind::Deliver { mailbox, msg } => {
                let waiter = match self.mailboxes.get_mut(&mailbox) {
                    Some(mb) if !mb.closed => {
                        if let Some(pid) = mb.waiting.take() {
                            Some((pid, msg))
                        } else {
                            mb.queue.push_back(msg);
                            None
                        }
                    }
                    // Closed or unknown mailbox: the message is dropped,
                    // like a packet to a dead host.
                    _ => None,
                };
                if let Some((pid, msg)) = waiter {
                    if let Some(p) = self.procs.get_mut(&pid.0) {
                        p.delivered = Some(msg);
                        // Invalidate any pending recv-timeout for this block.
                        p.epoch += 1;
                    }
                    self.make_runnable(pid);
                }
            }
        }
    }

    fn proc_exited(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid.0) {
            if p.blocked == BlockState::Exited {
                return;
            }
            // Clean a dangling recv registration.
            if let BlockState::Receiving { mailbox } = p.blocked {
                if let Some(mb) = self.mailboxes.get_mut(&mailbox) {
                    if mb.waiting == Some(pid) {
                        mb.waiting = None;
                    }
                }
            }
            p.blocked = BlockState::Exited;
            p.waiting_on = None;
            self.live -= 1;
            if !p.daemon {
                self.live_nondaemon -= 1;
            }
        }
        // A dead process holds nothing.
        self.holders.retain(|_, (holder, _)| *holder != pid);
        // Close mailboxes owned by this process.
        for mb in self.mailboxes.values_mut() {
            if mb.owner == Some(pid) {
                mb.closed = true;
                mb.queue.clear();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel and Sim
// ---------------------------------------------------------------------------

pub(crate) struct Kernel {
    state: Mutex<KernelState>,
    kernel_gate: KernelGate,
    seed: u64,
}

impl Kernel {
    fn signal_kernel(&self) {
        self.kernel_gate.signal();
    }
}

/// Outcome of a [`Sim::run_until_idle`] call.
#[derive(Debug)]
pub struct RunOutcome {
    /// Virtual time when the run stopped.
    pub time: SimTime,
    /// Names of processes that are still alive but blocked forever
    /// (no event can ever wake them). Empty for a clean quiescent run.
    pub blocked: Vec<String>,
}

impl RunOutcome {
    /// Panics if any live process is blocked with no pending event —
    /// i.e. the simulation deadlocked.
    ///
    /// # Panics
    ///
    /// Panics with the list of blocked processes.
    pub fn expect_quiescent(&self) {
        assert!(
            self.blocked.is_empty(),
            "simulation deadlocked at {} with blocked processes: {:?}",
            self.time,
            self.blocked
        );
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// ```
/// use simcore::{Sim, SimTime};
/// use std::time::Duration;
///
/// let mut sim = Sim::new(42);
/// let inbox = sim.mailbox("inbox");
/// sim.spawn("echo", move |ctx| {
///     let msg = ctx.recv(inbox);
///     assert_eq!(msg.take::<u32>(), 7);
/// });
/// sim.spawn("sender", move |ctx| {
///     ctx.sleep(Duration::from_millis(5));
///     ctx.send(inbox, simcore::Msg::new(7u32), Duration::from_micros(100));
/// });
/// let out = sim.run_until_idle();
/// out.expect_quiescent();
/// assert_eq!(out.time, SimTime::from_nanos(5_100_000));
/// ```
pub struct Sim {
    kernel: Arc<Kernel>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.kernel.state.lock();
        f.debug_struct("Sim")
            .field("now", &st.now)
            .field("live", &st.live)
            .field("pending_events", &st.events.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation seeded with `seed`; the same seed gives the same
    /// run, event for event. Runnable-queue ties are broken in FIFO order
    /// ([`FifoScheduler`]); see [`Sim::with_scheduler`] to explore other
    /// schedules.
    pub fn new(seed: u64) -> Sim {
        Sim::with_scheduler(seed, Box::new(FifoScheduler))
    }

    /// Creates a simulation whose runnable-queue ties are broken by
    /// `scheduler` instead of FIFO order. Used by [`crate::explore`] to
    /// search over schedules and to replay a failing one.
    pub fn with_scheduler(seed: u64, scheduler: Box<dyn Scheduler>) -> Sim {
        let trace = std::env::var("SIM_TRACE").map(|v| v == "1").unwrap_or(false);
        Sim {
            kernel: Arc::new(Kernel {
                state: Mutex::new(KernelState {
                    now: SimTime::ZERO,
                    next_seq: 0,
                    events: TimingWheel::new(),
                    procs: HashMap::new(),
                    runnable: VecDeque::new(),
                    mailboxes: HashMap::new(),
                    next_pid: 0,
                    next_mailbox: 0,
                    panic: None,
                    live: 0,
                    live_nondaemon: 0,
                    trace,
                    scheduler,
                    decisions: Vec::new(),
                    holders: HashMap::new(),
                    last_nondaemon_run: SimTime::ZERO,
                    tracer: None,
                    metrics: None,
                }),
                kernel_gate: KernelGate { flag: Mutex::new(false), cv: Condvar::new() },
                seed,
            }),
        }
    }

    /// The seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.kernel.seed
    }

    /// Allocation and occupancy accounting for the kernel event queue.
    /// Used by the zero-allocation assertions in tests and the kernel
    /// bench report.
    pub fn event_queue_stats(&self) -> EventQueueStats {
        self.kernel.state.lock().events.stats()
    }

    /// Installs a span collector: from now on `Ctx::span_begin` and friends
    /// record into `tracer`. Recording is pure bookkeeping — it consumes no
    /// virtual time, no randomness, and adds no events, so an instrumented
    /// run is event-for-event identical to an uninstrumented one.
    pub fn set_tracer(&self, tracer: &Tracer) {
        self.kernel.state.lock().tracer = Some(tracer.clone());
    }

    /// Installs a metric sink: from now on `Ctx::metric_incr` /
    /// `Ctx::metric_record` write into `metrics`. Like tracing, recording
    /// never perturbs the simulation.
    pub fn set_metrics(&self, metrics: &MetricsRegistry) {
        self.kernel.state.lock().metrics = Some(metrics.clone());
    }

    /// The installed span collector, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.kernel.state.lock().tracer.clone()
    }

    /// The installed metric sink, if any.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.kernel.state.lock().metrics.clone()
    }

    /// The scheduling decisions made so far (contended picks only).
    /// Feeding the choices to a [`crate::scheduler::ReplayScheduler`] on a
    /// fresh `Sim` with the same seed reproduces this run's schedule.
    pub fn decision_trace(&self) -> Vec<Decision> {
        self.kernel.state.lock().decisions.clone()
    }

    /// Snapshot of the permanently blocked non-daemon processes plus the
    /// resource-holder table, for [`Sim::deadlock_report`].
    pub(crate) fn stuck_snapshot(&self) -> (SimTime, Vec<StuckProc>, HashMap<u64, (Pid, String)>) {
        let st = self.kernel.state.lock();
        let mut stuck: Vec<StuckProc> = st
            .procs
            .iter()
            .filter(|(_, p)| {
                !p.daemon && !matches!(p.blocked, BlockState::Exited | BlockState::Runnable)
            })
            .map(|(id, p)| StuckProc {
                pid: Pid(*id),
                name: p.name.clone(),
                block_state: match p.blocked {
                    BlockState::Sleeping => "sleeping".to_string(),
                    BlockState::Receiving { mailbox } => {
                        let name =
                            st.mailboxes.get(&mailbox).map(|mb| mb.name.as_str()).unwrap_or("?");
                        format!("receiving on {name}")
                    }
                    BlockState::Parked => "parked".to_string(),
                    _ => unreachable!("filtered above"),
                },
                wait: p.waiting_on.clone(),
            })
            .collect();
        stuck.sort_by_key(|p| p.pid);
        (st.now, stuck, st.holders.clone())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    /// Creates an unowned mailbox (never auto-closed).
    pub fn mailbox(&self, name: &str) -> Addr {
        create_mailbox(&self.kernel, name, None)
    }

    /// Spawns a process. It becomes runnable at the current virtual time.
    pub fn spawn<F>(&self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_process(&self.kernel, name, false, f)
    }

    /// Spawns a daemon process: a long-lived service that is allowed to be
    /// blocked waiting for requests when the simulation goes quiescent.
    pub fn spawn_daemon<F>(&self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_process(&self.kernel, name, true, f)
    }

    /// Runs until no events remain.
    pub fn run_until_idle(&mut self) -> RunOutcome {
        self.run_inner(None)
    }

    /// Runs until virtual time `t`; events after `t` stay pending and the
    /// clock is left at exactly `t`.
    pub fn run_until(&mut self, t: SimTime) -> RunOutcome {
        self.run_inner(Some(t))
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: Duration) -> RunOutcome {
        let t = self.now() + d;
        self.run_until(t)
    }

    fn run_inner(&mut self, deadline: Option<SimTime>) -> RunOutcome {
        loop {
            if let Some(p) = self.kernel.state.lock().panic.take() {
                resume_unwind(p);
            }
            // Run every currently runnable process to its next block point.
            let next = self.kernel.state.lock().pick_runnable();
            if let Some(pid) = next {
                self.run_process(pid);
                continue;
            }
            // Advance to the next event. Without a deadline, stop once
            // every non-daemon process has exited: the remaining events
            // belong to long-lived services (heartbeats, pollers) that
            // would otherwise tick forever. The stall bound covers the
            // deadlocked-but-daemons-keep-ticking case: if no non-daemon
            // has run for that long in virtual time, the survivors are
            // wedged and firing more daemon timers can never free them.
            let mut st = self.kernel.state.lock();
            let st = &mut *st;
            let fire = match st.events.peek() {
                Some((time, _, kind)) => match deadline {
                    Some(d) => time <= d,
                    None => {
                        st.live_nondaemon > 0
                            && (time <= st.last_nondaemon_run + STALL_LIMIT
                                || event_can_progress(&st.procs, &st.mailboxes, kind))
                    }
                },
                None => false,
            };
            if fire {
                let (time, _, kind) = st.events.pop().expect("peeked event");
                debug_assert!(time >= st.now, "event in the past");
                st.now = time;
                st.apply_event(kind);
            } else {
                if let Some(d) = deadline {
                    if st.now < d {
                        st.now = d;
                    }
                }
                let blocked = st
                    .procs
                    .values()
                    .filter(|p| {
                        !p.daemon
                            && p.blocked != BlockState::Exited
                            && p.blocked != BlockState::Runnable
                    })
                    .map(|p| p.name.clone())
                    .collect();
                return RunOutcome { time: st.now, blocked };
            }
        }
    }

    fn run_process(&self, pid: Pid) {
        let gate = {
            let mut st = self.kernel.state.lock();
            let (gate, daemon) = match st.procs.get_mut(&pid.0) {
                Some(p) if p.blocked != BlockState::Exited => {
                    if p.killed {
                        // Tell the thread to unwind; it does not take the
                        // token, so the kernel keeps running.
                        p.gate.set(RunCmd::Exit);
                        st.proc_exited(pid);
                        return;
                    }
                    (p.gate.clone(), p.daemon)
                }
                _ => return,
            };
            if !daemon {
                st.last_nondaemon_run = st.now;
            }
            gate
        };
        gate.set(RunCmd::Run);
        self.kernel.kernel_gate.wait();
    }

    /// Marks a process for termination. If it is blocked it unwinds without
    /// ever running again; if it is runnable it unwinds instead of running.
    pub fn kill(&self, pid: Pid) {
        kill_process(&self.kernel, pid);
    }

    /// Names of live processes that are currently blocked (diagnostic aid).
    pub fn blocked_processes(&self) -> Vec<String> {
        let st = self.kernel.state.lock();
        st.procs
            .values()
            .filter(|p| {
                !p.daemon && !matches!(p.blocked, BlockState::Exited | BlockState::Runnable)
            })
            .map(|p| p.name.clone())
            .collect()
    }

    /// Number of processes that have not exited.
    pub fn live_processes(&self) -> usize {
        self.kernel.state.lock().live
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Ask every remaining thread to unwind, then join them.
        let joins: Vec<_> = {
            let mut st = self.kernel.state.lock();
            let pids: Vec<u64> = st.procs.keys().copied().collect();
            let mut joins = Vec::new();
            for id in pids {
                let p = st.procs.get_mut(&id).expect("pid listed");
                if p.blocked != BlockState::Exited {
                    p.gate.set(RunCmd::Exit);
                }
                if let Some(j) = p.join.take() {
                    joins.push(j);
                }
            }
            joins
        };
        for j in joins {
            let _ = j.join();
        }
    }
}

fn create_mailbox(kernel: &Arc<Kernel>, name: &str, owner: Option<Pid>) -> Addr {
    let mut st = kernel.state.lock();
    let id = st.next_mailbox;
    st.next_mailbox += 1;
    st.mailboxes.insert(
        id,
        MailboxState {
            name: name.to_string(),
            owner,
            queue: VecDeque::new(),
            waiting: None,
            closed: false,
        },
    );
    Addr(id)
}

fn kill_process(kernel: &Arc<Kernel>, pid: Pid) {
    let mut st = kernel.state.lock();
    if let Some(p) = st.procs.get_mut(&pid.0) {
        if p.blocked == BlockState::Exited {
            return;
        }
        p.killed = true;
        match p.blocked {
            BlockState::Runnable => {
                // Handled when the kernel pops it from the runnable queue.
            }
            _ => {
                // Blocked: wake it with Exit. It unwinds without taking the
                // token, so it must not signal the kernel.
                p.gate.set(RunCmd::Exit);
                st.proc_exited(pid);
            }
        }
    }
}

fn spawn_process<F>(kernel: &Arc<Kernel>, name: &str, daemon: bool, f: F) -> Pid
where
    F: FnOnce(&mut Ctx) + Send + 'static,
{
    let gate = ProcGate::new();
    let pid = {
        let mut st = kernel.state.lock();
        let id = st.next_pid;
        st.next_pid += 1;
        Pid(id)
    };
    let thread_gate = gate.clone();
    let thread_kernel = kernel.clone();
    let pname = name.to_string();
    let seed = kernel.seed ^ pid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let join = std::thread::Builder::new()
        .name(format!("sim-{pname}"))
        .stack_size(256 * 1024)
        .spawn(move || {
            match thread_gate.wait_for_run() {
                RunCmd::Run => {}
                _ => {
                    // Exited before first run (shutdown); nothing to clean.
                    let mut st = thread_kernel.state.lock();
                    st.proc_exited(pid);
                    return;
                }
            }
            let mut ctx = Ctx {
                kernel: thread_kernel.clone(),
                pid,
                gate: thread_gate.clone(),
                rng: StdRng::seed_from_u64(seed),
                name: pname,
                trace_ctx: TraceCtx::root(),
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
            let held = thread_gate.held.load(Ordering::SeqCst);
            {
                let mut st = thread_kernel.state.lock();
                match result {
                    Ok(()) => {}
                    Err(p) => {
                        if !p.is::<ShutdownSignal>() {
                            st.panic = Some(p);
                        }
                    }
                }
                st.proc_exited(pid);
            }
            if held {
                thread_gate.held.store(false, Ordering::SeqCst);
                thread_kernel.signal_kernel();
            }
        })
        .expect("failed to spawn simulation thread");
    {
        let mut st = kernel.state.lock();
        st.procs.insert(
            pid.0,
            ProcSlot {
                name: name.to_string(),
                gate,
                join: Some(join),
                blocked: BlockState::Runnable,
                epoch: 0,
                delivered: None,
                killed: false,
                park_permit: false,
                daemon,
                waiting_on: None,
            },
        );
        st.live += 1;
        if !daemon {
            st.live_nondaemon += 1;
        }
        st.runnable.push_back(pid);
    }
    pid
}

// ---------------------------------------------------------------------------
// Ctx: the process-side API
// ---------------------------------------------------------------------------

/// The execution context handed to every simulated process.
///
/// All methods that block (`sleep`, `recv`, `call`, `park`) release the run
/// token to the kernel and resume when the corresponding event fires.
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: Pid,
    gate: Arc<ProcGate>,
    rng: StdRng,
    name: String,
    /// Current trace context; spans started with [`Ctx::span_begin`] are
    /// parented under it. Not inherited on spawn — infrastructure code
    /// forwards it explicitly inside its messages.
    trace_ctx: TraceCtx,
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).field("name", &self.name).finish()
    }
}

impl Ctx {
    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    /// Deterministic per-process random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Emits a trace line when `SIM_TRACE=1`.
    pub fn trace(&self, msg: impl AsRef<str>) {
        let st = self.kernel.state.lock();
        if st.trace {
            eprintln!("[{}] {}: {}", st.now, self.name, msg.as_ref());
        }
    }

    // --- observability -----------------------------------------------------
    //
    // All of these are no-ops when no tracer / metrics registry is installed
    // on the kernel, and recording itself is pure bookkeeping: no virtual
    // time, no events, no RNG — instrumented runs stay deterministic and
    // event-for-event identical to uninstrumented ones.

    /// Current time plus the installed tracer, fetched under one lock.
    fn tracer_now(&self) -> (SimTime, Option<Tracer>) {
        let st = self.kernel.state.lock();
        (st.now, st.tracer.clone())
    }

    /// This process's current trace context (the parent for new spans).
    pub fn trace_ctx(&self) -> TraceCtx {
        self.trace_ctx
    }

    /// Replaces the current trace context, returning the previous one so
    /// callers can scope a context and restore it.
    pub fn set_trace_ctx(&mut self, tc: TraceCtx) -> TraceCtx {
        std::mem::replace(&mut self.trace_ctx, tc)
    }

    /// Begins a span under the current trace context. Returns
    /// [`SpanId::NONE`] (and records nothing) when no tracer is installed.
    pub fn span_begin(&self, name: &str, cat: &str) -> SpanId {
        self.span_begin_under(self.trace_ctx.span, name, cat)
    }

    /// Begins a span under an explicit parent (e.g. a span id carried in a
    /// request message).
    pub fn span_begin_under(&self, parent: SpanId, name: &str, cat: &str) -> SpanId {
        let (now, tracer) = self.tracer_now();
        match tracer {
            Some(t) => t.begin(now, self.pid.0, &self.name, parent, name, cat),
            None => SpanId::NONE,
        }
    }

    /// Ends a span at the current virtual time (no-op for
    /// [`SpanId::NONE`]).
    pub fn span_end(&self, id: SpanId) {
        if id.is_none() {
            return;
        }
        let (now, tracer) = self.tracer_now();
        if let Some(t) = tracer {
            t.end(id, now);
        }
    }

    /// Attaches a `key = value` annotation to a span.
    pub fn span_annotate(&self, id: SpanId, key: &str, value: impl Into<String>) {
        if id.is_none() {
            return;
        }
        if let Some(t) = self.kernel.state.lock().tracer.clone() {
            t.annotate(id, key, value);
        }
    }

    /// Records a point event under the current trace context.
    pub fn span_instant(&self, name: &str, cat: &str) -> SpanId {
        let (now, tracer) = self.tracer_now();
        match tracer {
            Some(t) => t.instant(now, self.pid.0, &self.name, self.trace_ctx.span, name, cat),
            None => SpanId::NONE,
        }
    }

    /// The installed metric sink, if any.
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.kernel.state.lock().metrics.clone()
    }

    /// The installed span collector, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.kernel.state.lock().tracer.clone()
    }

    /// Increments the counter named `name` (no-op without a registry).
    pub fn metric_incr(&self, name: &str) {
        if let Some(m) = self.metrics() {
            m.incr(name);
        }
    }

    /// Adds `n` to the counter named `name` (no-op without a registry).
    pub fn metric_add(&self, name: &str, n: u64) {
        if let Some(m) = self.metrics() {
            m.add(name, n);
        }
    }

    /// Records one observation into the histogram named `name` (no-op
    /// without a registry).
    pub fn metric_record(&self, name: &str, d: Duration) {
        if let Some(m) = self.metrics() {
            m.record(name, d);
        }
    }

    /// Appends `(now, value)` to the time series named `name` (no-op
    /// without a registry) — gauge-style measurements such as queue depths
    /// or pool sizes, stamped with virtual time.
    pub fn metric_push(&self, name: &str, value: f64) {
        if let Some(m) = self.metrics() {
            let now = self.now();
            m.series(name).push(now, value);
        }
    }

    fn yield_to_kernel(&mut self) {
        self.gate.held.store(false, Ordering::SeqCst);
        self.kernel.signal_kernel();
        match self.gate.wait_for_run() {
            RunCmd::Run => {}
            // resume_unwind skips the panic hook: shutdown is not an error.
            _ => std::panic::resume_unwind(Box::new(ShutdownSignal)),
        }
    }

    /// Advances this process's clock by `d` (e.g. network or think time).
    pub fn sleep(&mut self, d: Duration) {
        {
            let mut st = self.kernel.state.lock();
            let now = st.now;
            let p = st.procs.get_mut(&self.pid.0).expect("own slot");
            p.epoch += 1;
            let epoch = p.epoch;
            p.blocked = BlockState::Sleeping;
            st.push_event(now + d, EventKind::Wake { pid: self.pid, epoch });
        }
        self.yield_to_kernel();
    }

    /// Models CPU work taking `d` of virtual time.
    ///
    /// Semantically identical to [`Ctx::sleep`], but code reads better; use
    /// [`crate::cpu::CpuHost`] instead when the CPU is *shared* and
    /// contention matters.
    pub fn compute(&mut self, d: Duration) {
        self.sleep(d);
    }

    /// Creates a mailbox owned by this process (closed automatically when the
    /// process exits).
    pub fn mailbox(&mut self, name: &str) -> Addr {
        create_mailbox(&self.kernel, name, Some(self.pid))
    }

    /// Creates an unowned mailbox that outlives this process.
    pub fn shared_mailbox(&mut self, name: &str) -> Addr {
        create_mailbox(&self.kernel, name, None)
    }

    /// Closes a mailbox; further sends to it are dropped.
    pub fn close_mailbox(&mut self, addr: Addr) {
        let mut st = self.kernel.state.lock();
        if let Some(mb) = st.mailboxes.get_mut(&addr.0) {
            mb.closed = true;
            mb.queue.clear();
        }
    }

    /// Sends `msg` to `to`, arriving after `latency`.
    pub fn send(&mut self, to: Addr, msg: Msg, latency: Duration) {
        let mut st = self.kernel.state.lock();
        let at = st.now + latency;
        st.push_event(at, EventKind::Deliver { mailbox: to.0, msg });
    }

    /// Receives the next message from `mb`, blocking until one arrives.
    ///
    /// # Panics
    ///
    /// Panics if the mailbox is closed or another process is already
    /// receiving on it.
    pub fn recv(&mut self, mb: Addr) -> Msg {
        loop {
            if let Some(m) = self.try_begin_recv(mb, None) {
                return m;
            }
            self.yield_to_kernel();
            let mut st = self.kernel.state.lock();
            let p = st.procs.get_mut(&self.pid.0).expect("own slot");
            if let Some(m) = p.delivered.take() {
                return m;
            }
            // Spurious wake (e.g. mailbox closed under us): retry.
            drop(st);
        }
    }

    /// Receives with a timeout; `None` means the timeout expired first.
    pub fn recv_timeout(&mut self, mb: Addr, timeout: Duration) -> Option<Msg> {
        if let Some(m) = self.try_begin_recv(mb, Some(timeout)) {
            return Some(m);
        }
        self.yield_to_kernel();
        let mut st = self.kernel.state.lock();
        let p = st.procs.get_mut(&self.pid.0).expect("own slot");
        if let Some(m) = p.delivered.take() {
            return Some(m);
        }
        // Timed out: withdraw the registration.
        if let Some(q) = st.mailboxes.get_mut(&mb.0) {
            if q.waiting == Some(self.pid) {
                q.waiting = None;
            }
        }
        None
    }

    /// If a message is queued, returns it; otherwise registers this process
    /// as the waiter (with an optional timeout event) and returns `None`.
    fn try_begin_recv(&mut self, mb: Addr, timeout: Option<Duration>) -> Option<Msg> {
        let mut st = self.kernel.state.lock();
        let now = st.now;
        let q = st
            .mailboxes
            .get_mut(&mb.0)
            .unwrap_or_else(|| panic!("recv on unknown mailbox {:?}", mb));
        assert!(!q.closed, "recv on closed mailbox {} ({:?})", q.name, mb);
        if let Some(m) = q.queue.pop_front() {
            return Some(m);
        }
        assert!(q.waiting.is_none(), "mailbox {} already has a waiting receiver", q.name);
        q.waiting = Some(self.pid);
        let p = st.procs.get_mut(&self.pid.0).expect("own slot");
        p.epoch += 1;
        let epoch = p.epoch;
        p.blocked = BlockState::Receiving { mailbox: mb.0 };
        if let Some(t) = timeout {
            st.push_event(now + t, EventKind::Wake { pid: self.pid, epoch });
        }
        None
    }

    /// Returns a queued message without blocking, if any.
    pub fn try_recv(&mut self, mb: Addr) -> Option<Msg> {
        let mut st = self.kernel.state.lock();
        st.mailboxes.get_mut(&mb.0).and_then(|q| q.queue.pop_front())
    }

    /// Issues a synchronous RPC: sends `req` to `to` and blocks for the
    /// response. The request travels with `latency`; the response latency is
    /// chosen by the server.
    ///
    /// # Panics
    ///
    /// Panics if the response cannot be downcast to `Resp`.
    pub fn call<Req, Resp>(&mut self, to: Addr, req: Req, latency: Duration) -> Resp
    where
        Req: Any + Send,
        Resp: Any + Send,
    {
        self.call_sized::<Req, Resp>(to, req, latency, 0)
    }

    /// Like [`Ctx::call`] but carries a simulated payload size.
    pub fn call_sized<Req, Resp>(
        &mut self,
        to: Addr,
        req: Req,
        latency: Duration,
        size: usize,
    ) -> Resp
    where
        Req: Any + Send,
        Resp: Any + Send,
    {
        let reply_to = self.mailbox("rpc-reply");
        self.send(to, Msg::sized(Request { reply_to, body: Box::new(req) }, size), latency);
        let resp = self.recv(reply_to);
        self.close_mailbox(reply_to);
        self.drop_mailbox(reply_to);
        resp.take::<Resp>()
    }

    /// Issues an RPC with a timeout; `None` means no reply arrived in time
    /// (e.g. the server crashed). A late reply is silently dropped.
    pub fn call_timeout<Req, Resp>(
        &mut self,
        to: Addr,
        req: Req,
        latency: Duration,
        timeout: Duration,
    ) -> Option<Resp>
    where
        Req: Any + Send,
        Resp: Any + Send,
    {
        let reply_to = self.mailbox("rpc-reply");
        self.send(to, Msg::new(Request { reply_to, body: Box::new(req) }), latency);
        let resp = self.recv_timeout(reply_to, timeout);
        self.close_mailbox(reply_to);
        self.drop_mailbox(reply_to);
        resp.map(|m| m.take::<Resp>())
    }

    /// Issues one request and collects up to `n` replies to it, until
    /// `timeout` elapses (measured from the send). The server side may
    /// answer a single request message several times — the fan-in half of
    /// batched RPC: one message out, replies streaming back individually.
    ///
    /// Returns the replies received in arrival order (fewer than `n` on
    /// timeout). Late replies are silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if a reply cannot be downcast to `Resp`.
    pub fn call_collect<Req, Resp>(
        &mut self,
        to: Addr,
        req: Req,
        latency: Duration,
        n: usize,
        timeout: Duration,
    ) -> Vec<Resp>
    where
        Req: Any + Send,
        Resp: Any + Send,
    {
        let reply_to = self.mailbox("rpc-reply");
        self.send(to, Msg::new(Request { reply_to, body: Box::new(req) }), latency);
        let deadline = self.now() + timeout;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let left = deadline.saturating_duration_since(self.now());
            if left.is_zero() {
                break;
            }
            match self.recv_timeout(reply_to, left) {
                Some(m) => out.push(m.take::<Resp>()),
                None => break,
            }
        }
        self.close_mailbox(reply_to);
        self.drop_mailbox(reply_to);
        out
    }

    /// Replies to an RPC received as a [`Request`].
    pub fn reply<Resp: Any + Send>(&mut self, reply_to: Addr, resp: Resp, latency: Duration) {
        self.send(reply_to, Msg::new(resp), latency);
    }

    /// Removes a mailbox entirely (frees its id).
    fn drop_mailbox(&mut self, addr: Addr) {
        let mut st = self.kernel.state.lock();
        st.mailboxes.remove(&addr.0);
    }

    /// Spawns a child process, runnable at the current virtual time.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_process(&self.kernel, name, false, f)
    }

    /// Spawns a daemon process (see [`Sim::spawn_daemon`]).
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        spawn_process(&self.kernel, name, true, f)
    }

    /// Kills another process (see [`Sim::kill`]).
    pub fn kill(&mut self, pid: Pid) {
        kill_process(&self.kernel, pid);
    }

    /// Annotates this process as about to block waiting for `resource`.
    ///
    /// Synchronization primitives call this just before blocking; the
    /// annotation is cleared automatically when the process is woken (or
    /// when a pending park permit makes the block a no-op). It feeds the
    /// wait-for graph behind [`Sim::deadlock_report`].
    pub fn annotate_wait(
        &mut self,
        resource: u64,
        kind: WaitKind,
        resource_name: impl Into<String>,
        site: impl Into<String>,
    ) {
        let mut st = self.kernel.state.lock();
        if let Some(p) = st.procs.get_mut(&self.pid.0) {
            p.waiting_on = Some(WaitAnnotation {
                resource,
                resource_name: resource_name.into(),
                kind,
                site: site.into(),
            });
        }
    }

    /// Removes this process's wait annotation (for fast paths that turned
    /// out not to block after all).
    pub fn clear_wait(&mut self) {
        let mut st = self.kernel.state.lock();
        if let Some(p) = st.procs.get_mut(&self.pid.0) {
            p.waiting_on = None;
        }
    }

    /// Registers this process as the holder of `resource` (a lock or
    /// semaphore-like primitive identified by a stable id).
    pub fn resource_acquired(&mut self, resource: u64, name: &str) {
        let mut st = self.kernel.state.lock();
        st.holders.insert(resource, (self.pid, name.to_string()));
    }

    /// Records a direct ownership handoff of `resource` to `to` (e.g. FIFO
    /// lock transfer on release).
    pub fn resource_passed(&mut self, resource: u64, to: Pid, name: &str) {
        let mut st = self.kernel.state.lock();
        st.holders.insert(resource, (to, name.to_string()));
    }

    /// Releases `resource` if this process holds it.
    pub fn resource_released(&mut self, resource: u64) {
        let mut st = self.kernel.state.lock();
        if st.holders.get(&resource).is_some_and(|(h, _)| *h == self.pid) {
            st.holders.remove(&resource);
        }
    }

    /// Blocks until another process calls [`Ctx::unpark`] with this pid.
    /// A pending permit (unpark before park) is consumed immediately.
    pub fn park(&mut self) {
        {
            let mut st = self.kernel.state.lock();
            let p = st.procs.get_mut(&self.pid.0).expect("own slot");
            if p.park_permit {
                p.park_permit = false;
                p.waiting_on = None;
                return;
            }
            p.epoch += 1;
            p.blocked = BlockState::Parked;
        }
        self.yield_to_kernel();
    }

    /// Makes a parked process runnable, or stores a permit if it is not
    /// parked yet.
    pub fn unpark(&mut self, pid: Pid) {
        let mut st = self.kernel.state.lock();
        let parked = match st.procs.get_mut(&pid.0) {
            Some(p) => {
                if p.blocked == BlockState::Parked {
                    true
                } else {
                    if p.blocked != BlockState::Exited {
                        p.park_permit = true;
                    }
                    false
                }
            }
            None => false,
        };
        if parked {
            st.make_runnable(pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_is_idle() {
        let mut sim = Sim::new(1);
        let out = sim.run_until_idle();
        out.expect_quiescent();
        assert_eq!(out.time, SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new(1);
        sim.spawn("sleeper", |ctx| {
            ctx.sleep(Duration::from_millis(10));
            ctx.sleep(Duration::from_millis(5));
        });
        let out = sim.run_until_idle();
        out.expect_quiescent();
        assert_eq!(out.time, SimTime::from_millis(15));
    }

    #[test]
    fn messages_arrive_after_latency() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("mb");
        sim.spawn("rx", move |ctx| {
            let m = ctx.recv(mb);
            assert_eq!(m.take::<&'static str>(), "hello");
            assert_eq!(ctx.now(), SimTime::from_millis(2));
        });
        sim.spawn("tx", move |ctx| {
            ctx.send(mb, Msg::new("hello"), Duration::from_millis(2));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn queued_message_received_without_waiting() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("mb");
        sim.spawn("tx", move |ctx| {
            ctx.send(mb, Msg::new(1u8), Duration::ZERO);
            ctx.send(mb, Msg::new(2u8), Duration::ZERO);
        });
        sim.spawn("rx", move |ctx| {
            ctx.sleep(Duration::from_millis(1));
            assert_eq!(ctx.recv(mb).take::<u8>(), 1);
            assert_eq!(ctx.recv(mb).take::<u8>(), 2);
            assert_eq!(ctx.now(), SimTime::from_millis(1));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn recv_timeout_expires() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("mb");
        sim.spawn("rx", move |ctx| {
            let r = ctx.recv_timeout(mb, Duration::from_millis(3));
            assert!(r.is_none());
            assert_eq!(ctx.now(), SimTime::from_millis(3));
            // A message after the timeout is still receivable later.
            let m = ctx.recv(mb);
            assert_eq!(m.take::<u8>(), 9);
        });
        sim.spawn("tx", move |ctx| {
            ctx.sleep(Duration::from_millis(10));
            ctx.send(mb, Msg::new(9u8), Duration::ZERO);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn recv_timeout_receives_in_time() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("mb");
        sim.spawn("tx", move |ctx| {
            ctx.send(mb, Msg::new(5u8), Duration::from_millis(1));
        });
        sim.spawn("rx", move |ctx| {
            let r = ctx.recv_timeout(mb, Duration::from_millis(100));
            assert_eq!(r.expect("delivered").take::<u8>(), 5);
            assert_eq!(ctx.now(), SimTime::from_millis(1));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn rpc_round_trip() {
        let mut sim = Sim::new(1);
        let server = sim.mailbox("server");
        sim.spawn("server", move |ctx| {
            for _ in 0..3 {
                let req = ctx.recv(server).take::<Request>();
                let (reply_to, n) = req.take::<u32>();
                ctx.reply(reply_to, n * 2, Duration::from_micros(100));
            }
        });
        sim.spawn("client", move |ctx| {
            for i in 0..3u32 {
                let r: u32 = ctx.call(server, i, Duration::from_micros(100));
                assert_eq!(r, i * 2);
            }
            // 3 calls x 200us round trip
            assert_eq!(ctx.now(), SimTime::from_nanos(600_000));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn call_timeout_on_dead_server() {
        let mut sim = Sim::new(1);
        let server = sim.mailbox("server");
        // No server process: requests pile up unanswered.
        sim.spawn("client", move |ctx| {
            let r: Option<u32> = ctx.call_timeout(
                server,
                1u32,
                Duration::from_micros(100),
                Duration::from_millis(5),
            );
            assert!(r.is_none());
            assert_eq!(ctx.now(), SimTime::from_millis(5));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(1);
        sim.spawn("sleeper", |ctx| {
            ctx.sleep(Duration::from_secs(100));
        });
        let out = sim.run_until(SimTime::from_secs(1));
        assert_eq!(out.time, SimTime::from_secs(1));
        assert_eq!(out.blocked.len(), 1);
        // Resume to the end.
        let out = sim.run_until_idle();
        out.expect_quiescent();
        assert_eq!(out.time, SimTime::from_secs(100));
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("never");
        sim.spawn("stuck", move |ctx| {
            let _ = ctx.recv(mb);
        });
        let out = sim.run_until_idle();
        assert_eq!(out.blocked, vec!["stuck".to_string()]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panic_propagates() {
        let mut sim = Sim::new(1);
        sim.spawn("bad", |_ctx| panic!("boom"));
        sim.run_until_idle();
    }

    #[test]
    fn kill_blocked_process() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("never");
        let pid = sim.spawn("victim", move |ctx| {
            let _ = ctx.recv(mb);
            unreachable!("killed before any message");
        });
        sim.spawn("killer", move |ctx| {
            ctx.sleep(Duration::from_millis(1));
            ctx.kill(pid);
        });
        let out = sim.run_until_idle();
        out.expect_quiescent();
        assert_eq!(sim.live_processes(), 0);
    }

    #[test]
    fn messages_to_dead_process_mailbox_are_dropped() {
        let mut sim = Sim::new(1);
        // The victim owns its inbox; when it exits the inbox closes and
        // later sends are dropped instead of piling up.
        let inbox_cell: Arc<Mutex<Option<Addr>>> = Arc::new(Mutex::new(None));
        let cell = inbox_cell.clone();
        sim.spawn("victim", move |ctx| {
            let inbox = ctx.mailbox("victim-inbox");
            *cell.lock() = Some(inbox);
            // Exits immediately; inbox closes.
        });
        let cell = inbox_cell.clone();
        sim.spawn("sender", move |ctx| {
            ctx.sleep(Duration::from_millis(1));
            let inbox = cell.lock().take().expect("victim ran first");
            ctx.send(inbox, Msg::new(1u8), Duration::ZERO);
            ctx.sleep(Duration::from_millis(1));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn spawn_from_process() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("mb");
        sim.spawn("parent", move |ctx| {
            ctx.spawn("child", move |c| {
                c.sleep(Duration::from_millis(2));
                c.send(mb, Msg::new(7u8), Duration::ZERO);
            });
            let m = ctx.recv(mb);
            assert_eq!(m.take::<u8>(), 7);
            assert_eq!(ctx.now(), SimTime::from_millis(2));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn park_unpark_with_permit() {
        let mut sim = Sim::new(1);
        sim.spawn("main", move |ctx| {
            let me = ctx.pid();
            ctx.spawn("waker", move |c| {
                c.unpark(me); // permit stored before the park
            });
            ctx.sleep(Duration::from_millis(1));
            ctx.park(); // consumes the permit, no block
            assert_eq!(ctx.now(), SimTime::from_millis(1));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn park_then_unpark() {
        let mut sim = Sim::new(1);
        sim.spawn("a", move |ctx| {
            let me = ctx.pid();
            ctx.spawn("waker", move |c| {
                c.sleep(Duration::from_millis(4));
                c.unpark(me);
            });
            ctx.park();
            assert_eq!(ctx.now(), SimTime::from_millis(4));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<u64> {
            let mut sim = Sim::new(seed);
            let mb = sim.mailbox("mb");
            let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            for i in 0..10u64 {
                let log = log.clone();
                sim.spawn(&format!("w{i}"), move |ctx| {
                    use rand::RngExt;
                    let jitter: u64 = ctx.rng().random_range(0..1000);
                    ctx.sleep(Duration::from_micros(jitter));
                    ctx.send(mb, Msg::new(i), Duration::from_micros(50));
                    log.lock().push(ctx.now().as_nanos());
                });
            }
            let log2 = log.clone();
            sim.spawn("collector", move |ctx| {
                for _ in 0..10 {
                    let m = ctx.recv(mb);
                    log2.lock().push(m.take::<u64>());
                }
            });
            sim.run_until_idle().expect_quiescent();
            let v = log.lock().clone();
            v
        }
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must give identical traces");
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn many_processes() {
        let mut sim = Sim::new(3);
        let mb = sim.mailbox("sink");
        const N: u64 = 300;
        for i in 0..N {
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.sleep(Duration::from_micros(i));
                ctx.send(mb, Msg::new(i), Duration::from_micros(10));
            });
        }
        sim.spawn("sink", move |ctx| {
            let mut sum = 0u64;
            for _ in 0..N {
                sum += ctx.recv(mb).take::<u64>();
            }
            assert_eq!(sum, N * (N - 1) / 2);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn zero_latency_send_still_ordered() {
        let mut sim = Sim::new(1);
        let mb = sim.mailbox("mb");
        sim.spawn("tx", move |ctx| {
            for i in 0..5u32 {
                ctx.send(mb, Msg::new(i), Duration::ZERO);
            }
        });
        sim.spawn("rx", move |ctx| {
            for i in 0..5u32 {
                assert_eq!(ctx.recv(mb).take::<u32>(), i);
            }
        });
        sim.run_until_idle().expect_quiescent();
    }
}
