//! Latency models for simulated links and services.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Jitter applied around a base latency.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Jitter {
    /// No jitter; the latency is exactly the base.
    None,
    /// Uniform in `[base * (1 - frac), base * (1 + frac)]`.
    Uniform(f64),
    /// Exponential tail: `base * (1 + Exp(mean = frac))`. Models the
    /// long-tailed behaviour of object storage (cf. Fig. 6 in the paper).
    ExpTail(f64),
}

/// A sampled one-way latency: base plus jitter, plus an optional
/// per-byte transfer cost.
///
/// # Examples
///
/// ```
/// use simcore::LatencyModel;
/// use std::time::Duration;
///
/// let lan = LatencyModel::fixed(Duration::from_micros(90));
/// let mut rng = rand::SeedableRng::seed_from_u64(1);
/// assert_eq!(lan.sample(&mut rng), Duration::from_micros(90));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Base one-way latency.
    pub base: Duration,
    /// Jitter around the base.
    pub jitter: Jitter,
    /// Transfer cost per byte (inverse bandwidth); zero disables it.
    pub per_byte: Duration,
}

impl LatencyModel {
    /// A constant latency with no jitter and no bandwidth term.
    pub fn fixed(base: Duration) -> LatencyModel {
        LatencyModel { base, jitter: Jitter::None, per_byte: Duration::ZERO }
    }

    /// A latency with uniform jitter of `frac` around `base`.
    pub fn uniform(base: Duration, frac: f64) -> LatencyModel {
        LatencyModel { base, jitter: Jitter::Uniform(frac), per_byte: Duration::ZERO }
    }

    /// A latency with an exponential tail of mean `frac * base`.
    pub fn exp_tail(base: Duration, frac: f64) -> LatencyModel {
        LatencyModel { base, jitter: Jitter::ExpTail(frac), per_byte: Duration::ZERO }
    }

    /// Adds a bandwidth term: `bytes_per_sec` of sustained throughput.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> LatencyModel {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        self.per_byte = Duration::from_secs_f64(1.0 / bytes_per_sec);
        self
    }

    /// Samples a latency for a zero-size message.
    pub fn sample(&self, rng: &mut StdRng) -> Duration {
        self.sample_sized(rng, 0)
    }

    /// Samples a latency for a message of `size` bytes.
    pub fn sample_sized(&self, rng: &mut StdRng, size: usize) -> Duration {
        let base = self.base.as_secs_f64();
        let jittered = match self.jitter {
            Jitter::None => base,
            Jitter::Uniform(f) => {
                let lo = base * (1.0 - f);
                let hi = base * (1.0 + f);
                if hi > lo {
                    rng.random_range(lo..hi)
                } else {
                    base
                }
            }
            Jitter::ExpTail(f) => {
                let u: f64 = rng.random_range(f64::EPSILON..1.0);
                base * (1.0 + f * (-u.ln()))
            }
        };
        let transfer = self.per_byte.as_secs_f64() * size as f64;
        Duration::from_secs_f64((jittered + transfer).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn fixed_has_no_jitter() {
        let m = LatencyModel::fixed(Duration::from_micros(250));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), Duration::from_micros(250));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::uniform(Duration::from_micros(100), 0.2);
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= Duration::from_micros(80), "{s:?}");
            assert!(s <= Duration::from_micros(120), "{s:?}");
        }
    }

    #[test]
    fn exp_tail_is_at_least_base_and_sometimes_long() {
        let m = LatencyModel::exp_tail(Duration::from_millis(20), 1.0);
        let mut r = rng();
        let samples: Vec<Duration> = (0..2000).map(|_| m.sample(&mut r)).collect();
        assert!(samples.iter().all(|s| *s >= Duration::from_millis(20)));
        // With mean tail = base, some samples should exceed 2x base.
        assert!(samples.iter().any(|s| *s > Duration::from_millis(40)));
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let m = LatencyModel::fixed(Duration::from_millis(1)).with_bandwidth(1_000_000.0);
        let mut r = rng();
        let small = m.sample_sized(&mut r, 0);
        let big = m.sample_sized(&mut r, 1_000_000);
        assert_eq!(small, Duration::from_millis(1));
        assert_eq!(big, Duration::from_millis(1) + Duration::from_secs(1));
    }

    #[test]
    fn deterministic_for_same_rng_state() {
        let m = LatencyModel::uniform(Duration::from_micros(500), 0.5);
        let a: Vec<_> = {
            let mut r = rng();
            (0..50).map(|_| m.sample(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = rng();
            (0..50).map(|_| m.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LatencyModel::fixed(Duration::ZERO).with_bandwidth(0.0);
    }
}
