//! # simcore — deterministic discrete-event simulation kernel
//!
//! The substrate under the whole Crucial reproduction: a virtual clock,
//! processes backed by real OS threads but scheduled one-at-a-time by the
//! kernel (so runs are **deterministic** given a seed), mailboxes with
//! latency models, a processor-sharing CPU resource, local synchronization
//! primitives, a compact binary codec, and measurement helpers.
//!
//! ## Why a simulator?
//!
//! The paper evaluates on AWS (Lambda, S3, EC2, ElastiCache). Reproducing
//! its *experiments* therefore requires a stand-in for the cloud itself.
//! A DES lets us run 800 concurrent "Lambdas" and tens of thousands of
//! 35 ms object-store operations in seconds of wall-clock time, while the
//! shapes of the results (who wins, by what factor) come out of the same
//! protocols the paper describes.
//!
//! ## Quick tour
//!
//! ```
//! use simcore::{Sim, Msg};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(7);
//! let inbox = sim.mailbox("service");
//! // A server that doubles numbers.
//! sim.spawn_daemon("server", move |ctx| loop {
//!     let req = ctx.recv(inbox).take::<simcore::Request>();
//!     let (reply_to, n) = req.take::<u64>();
//!     ctx.compute(Duration::from_micros(20));     // service time
//!     ctx.reply(reply_to, n * 2, Duration::from_micros(90));
//! });
//! sim.spawn("client", move |ctx| {
//!     let doubled: u64 = ctx.call(inbox, 21u64, Duration::from_micros(90));
//!     assert_eq!(doubled, 42);
//! });
//! sim.run_until_idle().expect_quiescent();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod kernel;
mod latency;
mod metrics;
mod slab;
mod symbol;
mod time;
mod timer;
mod wheel;

pub mod codec;
pub mod cpu;
pub mod detect;
pub mod explore;
pub mod scheduler;
pub mod sync;
pub mod trace;

pub use cpu::CpuHost;
pub use detect::{DeadlockReport, StuckProc, WaitAnnotation, WaitKind};
pub use kernel::{Addr, Ctx, Msg, Pid, Request, RunOutcome, Sim};
pub use latency::{Jitter, LatencyModel};
pub use metrics::{fsum, Counter, LatencyStats, MetricsRegistry, Series};
pub use scheduler::{Decision, FifoScheduler, RandomScheduler, ReplayScheduler, Scheduler};
pub use slab::Slab;
pub use time::SimTime;
pub use timer::Ticker;
pub use trace::{SpanId, SpanKind, SpanRecord, TraceCtx, Tracer};
pub use wheel::{EventQueueStats, TimingWheel};
