//! Lightweight measurement helpers: latency statistics and time series.
//!
//! These are plain owned values (cheaply clonable handles around shared
//! state) that experiment harnesses read after the simulation finishes.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::time::SimTime;

/// Sums `f64` terms with a `+0.0` identity for the empty case.
///
/// `Iterator::sum::<f64>()` over an empty iterator yields `-0.0`, which
/// leaks a "-0.00" into rendered cost tables the first time an empty
/// ledger is formatted. Every GB-second/ledger fold in the workspace goes
/// through this one helper so the fix lives in exactly one place.
///
/// # Examples
///
/// ```
/// assert!(simcore::fsum(std::iter::empty()).is_sign_positive());
/// assert_eq!(simcore::fsum([1.0, 2.0, 3.0]), 6.0);
/// ```
pub fn fsum<I: IntoIterator<Item = f64>>(terms: I) -> f64 {
    terms.into_iter().fold(0.0, |acc, x| acc + x)
}

/// Accumulates latency observations and reports summary statistics.
///
/// Stores every sample (simulations here are small enough), so exact
/// percentiles are available.
///
/// # Examples
///
/// ```
/// use simcore::LatencyStats;
/// use std::time::Duration;
///
/// let stats = LatencyStats::new("put");
/// stats.record(Duration::from_micros(100));
/// stats.record(Duration::from_micros(300));
/// assert_eq!(stats.count(), 2);
/// assert_eq!(stats.mean(), Duration::from_micros(200));
/// ```
#[derive(Clone)]
pub struct LatencyStats {
    inner: Arc<Mutex<LatencyInner>>,
}

struct LatencyInner {
    name: String,
    samples: Vec<u64>, // nanos
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty accumulator labelled `name`.
    pub fn new(name: &str) -> LatencyStats {
        LatencyStats {
            inner: Arc::new(Mutex::new(LatencyInner {
                name: name.to_string(),
                samples: Vec::new(),
                sorted: true,
            })),
        }
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let mut g = self.inner.lock();
        g.samples.push(d.as_nanos().min(u64::MAX as u128) as u64);
        g.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.inner.lock().samples.len()
    }

    /// Mean latency; zero if empty.
    pub fn mean(&self) -> Duration {
        let g = self.inner.lock();
        if g.samples.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = g.samples.iter().map(|&s| s as u128).sum();
        Duration::from_nanos((sum / g.samples.len() as u128) as u64)
    }

    /// Exact percentile in `[0, 100]`; zero if empty.
    pub fn percentile(&self, p: f64) -> Duration {
        let mut g = self.inner.lock();
        if g.samples.is_empty() {
            return Duration::ZERO;
        }
        if !g.sorted {
            g.samples.sort_unstable();
            g.sorted = true;
        }
        let idx = ((p / 100.0) * (g.samples.len() - 1) as f64).round() as usize;
        Duration::from_nanos(g.samples[idx.min(g.samples.len() - 1)])
    }

    /// Minimum observation; zero if empty.
    pub fn min(&self) -> Duration {
        let g = self.inner.lock();
        Duration::from_nanos(g.samples.iter().copied().min().unwrap_or(0))
    }

    /// Maximum observation; zero if empty.
    pub fn max(&self) -> Duration {
        let g = self.inner.lock();
        Duration::from_nanos(g.samples.iter().copied().max().unwrap_or(0))
    }

    /// Label given at construction.
    pub fn name(&self) -> String {
        self.inner.lock().name.clone()
    }
}

impl fmt::Debug for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyStats")
            .field("name", &self.name())
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

/// A shared counter, e.g. completed operations.
#[derive(Clone, Default)]
pub struct Counter {
    inner: Arc<Mutex<u64>>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        *self.inner.lock() += n;
    }

    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.inner.lock()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A time series of `(virtual time, value)` points — e.g. throughput per
/// second for the Fig. 8 elasticity experiment.
#[derive(Clone, Default)]
pub struct Series {
    inner: Arc<Mutex<Vec<(SimTime, f64)>>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Series {
        Series::default()
    }

    /// Appends a point.
    pub fn push(&self, t: SimTime, v: f64) {
        self.inner.lock().push((t, v));
    }

    /// Snapshot of all points in insertion order.
    pub fn points(&self) -> Vec<(SimTime, f64)> {
        self.inner.lock().clone()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean of values within `[from, to)`; `None` if no points fall there.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let g = self.inner.lock();
        let vals: Vec<f64> =
            g.iter().filter(|(t, _)| *t >= from && *t < to).map(|(_, v)| *v).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

impl fmt::Debug for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Series(len={})", self.len())
    }
}

/// A named registry of [`Counter`]s, [`LatencyStats`] histograms, and
/// [`Series`] — the shared measurement surface of a simulation.
///
/// Install one on a `Sim` with `Sim::set_metrics`; processes then record
/// through `Ctx::metric_incr` / `Ctx::metric_record` (or by fetching a
/// handle with [`MetricsRegistry::counter`] / [`histogram`]), and the
/// harness reads everything back by name after the run. Instruments are
/// created lazily on first use and stored in sorted (`BTreeMap`) order, so
/// snapshots iterate deterministically.
///
/// [`histogram`]: MetricsRegistry::histogram
///
/// # Examples
///
/// ```
/// use simcore::MetricsRegistry;
/// use std::time::Duration;
///
/// let m = MetricsRegistry::new();
/// m.incr("dso.invokes");
/// m.record("put", Duration::from_micros(150));
/// assert_eq!(m.counter_value("dso.invokes"), 1);
/// assert_eq!(m.histogram("put").count(), 1);
/// ```
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, LatencyStats>,
    series: BTreeMap<String, Series>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use. The returned
    /// handle shares state with the registry.
    ///
    /// Looks up by `&str` first so the steady-state path (instrument
    /// already exists) never allocates an owned key.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock();
        if let Some(c) = g.counters.get(name) {
            return c.clone();
        }
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created empty on first use (allocation
    /// only on that first use, like [`MetricsRegistry::counter`]).
    pub fn histogram(&self, name: &str) -> LatencyStats {
        let mut g = self.inner.lock();
        if let Some(h) = g.histograms.get(name) {
            return h.clone();
        }
        g.histograms.entry(name.to_string()).or_insert_with(|| LatencyStats::new(name)).clone()
    }

    /// The time series named `name`, created empty on first use (allocation
    /// only on that first use, like [`MetricsRegistry::counter`]).
    pub fn series(&self, name: &str) -> Series {
        let mut g = self.inner.lock();
        if let Some(s) = g.series.get(name) {
            return s.clone();
        }
        g.series.entry(name.to_string()).or_default().clone()
    }

    /// Increments the counter named `name`.
    pub fn incr(&self, name: &str) {
        self.counter(name).incr();
    }

    /// Adds `n` to the counter named `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Records one observation into the histogram named `name`.
    pub fn record(&self, name: &str, d: Duration) {
        self.histogram(name).record(d);
    }

    /// Current value of the counter named `name`; zero if it was never
    /// touched (does not create it).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Snapshot of all counters as `(name, value)`, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.lock().counters.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Snapshot of all histograms as `(name, handle)`, in name order.
    pub fn histograms(&self) -> Vec<(String, LatencyStats)> {
        self.inner.lock().histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Human-readable dump of every instrument, in name order (so the text
    /// is deterministic across identically-seeded runs).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "histogram {name}: n={} mean={:?} p50={:?} p99={:?} max={:?}\n",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.max(),
            ));
        }
        let g = self.inner.lock();
        for (name, s) in g.series.iter() {
            out.push_str(&format!("series    {name}: {} points\n", s.len()));
        }
        out
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock();
        write!(
            f,
            "MetricsRegistry(counters={}, histograms={}, series={})",
            g.counters.len(),
            g.histograms.len(),
            g.series.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basics() {
        let s = LatencyStats::new("x");
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.percentile(50.0), Duration::ZERO);
        for us in [10u64, 20, 30, 40, 50] {
            s.record(Duration::from_micros(us));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), Duration::from_micros(30));
        assert_eq!(s.percentile(0.0), Duration::from_micros(10));
        assert_eq!(s.percentile(50.0), Duration::from_micros(30));
        assert_eq!(s.percentile(100.0), Duration::from_micros(50));
        assert_eq!(s.min(), Duration::from_micros(10));
        assert_eq!(s.max(), Duration::from_micros(50));
        assert_eq!(s.name(), "x");
    }

    #[test]
    fn percentile_after_interleaved_records() {
        let s = LatencyStats::new("y");
        s.record(Duration::from_micros(30));
        let _ = s.percentile(50.0); // forces a sort
        s.record(Duration::from_micros(10)); // unsorted again
        assert_eq!(s.percentile(0.0), Duration::from_micros(10));
    }

    #[test]
    fn counter() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 6, "clones share state");
    }

    #[test]
    fn registry_shares_instruments_and_orders_snapshots() {
        let m = MetricsRegistry::new();
        m.incr("z.last");
        m.add("a.first", 3);
        let c = m.counter("a.first");
        c.incr();
        assert_eq!(m.counter_value("a.first"), 4, "handles share state");
        assert_eq!(m.counter_value("untouched"), 0);
        m.record("put", Duration::from_micros(10));
        m.record("put", Duration::from_micros(30));
        assert_eq!(m.histogram("put").mean(), Duration::from_micros(20));
        m.series("tput").push(SimTime::from_secs(1), 5.0);
        let names: Vec<String> = m.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first".to_string(), "z.last".to_string()]);
        let clone = m.clone();
        clone.incr("a.first");
        assert_eq!(m.counter_value("a.first"), 5, "registry clones share state");
        let s = m.summary();
        assert!(s.contains("counter   a.first = 5"), "{s}");
        assert!(s.contains("histogram put: n=2"), "{s}");
        assert!(s.contains("series    tput: 1 points"), "{s}");
    }

    #[test]
    fn series_mean_in_window() {
        let s = Series::new();
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 20.0);
        s.push(SimTime::from_secs(3), 60.0);
        assert_eq!(s.len(), 3);
        let m = s.mean_in(SimTime::from_secs(1), SimTime::from_secs(3)).expect("points");
        assert!((m - 15.0).abs() < 1e-9);
        assert!(s.mean_in(SimTime::from_secs(10), SimTime::from_secs(20)).is_none());
    }
}
