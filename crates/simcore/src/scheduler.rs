//! Pluggable ready-queue scheduling.
//!
//! The kernel is single-threaded in virtual time: whenever more than one
//! process is runnable *at the same instant*, something must pick which one
//! gets the run token first. That choice is invisible to correct programs
//! and fatal to racy ones — so it is abstracted behind the [`Scheduler`]
//! trait. [`FifoScheduler`] preserves the kernel's historical
//! first-come-first-served order (and is what [`crate::Sim::new`] installs);
//! [`RandomScheduler`] perturbs the order deterministically from a seed so
//! the explorer in [`crate::explore`] can search over schedules; and
//! [`ReplayScheduler`] re-executes a recorded decision prefix exactly,
//! which is how a failing schedule is reproduced from a report.
//!
//! Every pick made among ≥ 2 runnable processes is recorded as a
//! [`Decision`] in the simulation's decision trace
//! ([`crate::Sim::decision_trace`]); the trace plus the seed fully
//! determine a run.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::kernel::Pid;

/// One scheduling decision: the kernel had `options` runnable processes and
/// ran the one at index `choice`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// How many processes were runnable at this point (always ≥ 2; picks
    /// with a single candidate are forced and not recorded).
    pub options: u32,
    /// Index into the runnable queue that was chosen.
    pub choice: u32,
}

/// Picks which runnable process receives the run token next.
///
/// `pick` is only consulted when at least two processes are runnable; the
/// returned index is clamped to the queue length by the kernel, so an
/// out-of-range pick degrades to "last" rather than panicking.
pub trait Scheduler: Send {
    /// Returns the index (into `runnable`) of the process to run next.
    fn pick(&mut self, runnable: &[Pid]) -> usize;
}

/// First-come-first-served: always runs the longest-waiting process.
///
/// This is the kernel's historical order and the default for
/// [`crate::Sim::new`]; every pre-existing test sees byte-identical runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, _runnable: &[Pid]) -> usize {
        0
    }
}

/// Picks uniformly at random among the runnable processes, deterministically
/// from a seed: the same seed always yields the same schedule.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler; runs with equal seeds are identical.
    pub fn new(seed: u64) -> RandomScheduler {
        // Decorrelate from the kernel's per-process RNG streams, which are
        // seeded from the same user-facing seed.
        RandomScheduler { rng: StdRng::seed_from_u64(seed ^ 0x5C4E_D10E_5EED_F00Du64) }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, runnable: &[Pid]) -> usize {
        self.rng.random_range(0..runnable.len())
    }
}

/// Replays a recorded choice prefix, then falls back to FIFO.
///
/// Feeding back the `choice` values of a previous run's
/// [`crate::Sim::decision_trace`] reproduces that run exactly; a shorter
/// prefix pins only the first decisions, which is how the bounded-exhaustive
/// explorer branches off a known schedule.
#[derive(Debug)]
pub struct ReplayScheduler {
    prefix: VecDeque<u32>,
}

impl ReplayScheduler {
    /// Creates a scheduler that replays `prefix` choice-by-choice.
    pub fn new(prefix: impl IntoIterator<Item = u32>) -> ReplayScheduler {
        ReplayScheduler { prefix: prefix.into_iter().collect() }
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, runnable: &[Pid]) -> usize {
        match self.prefix.pop_front() {
            Some(c) => (c as usize).min(runnable.len() - 1),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(n: u64) -> Vec<Pid> {
        (0..n).map(Pid).collect()
    }

    #[test]
    fn fifo_always_picks_front() {
        let mut s = FifoScheduler;
        assert_eq!(s.pick(&pids(5)), 0);
        assert_eq!(s.pick(&pids(2)), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..32).map(|_| s.pick(&pids(7))).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
        assert!(run(3).iter().all(|&i| i < 7));
    }

    #[test]
    fn replay_consumes_prefix_then_fifo() {
        let mut s = ReplayScheduler::new([2, 1, 9]);
        assert_eq!(s.pick(&pids(4)), 2);
        assert_eq!(s.pick(&pids(4)), 1);
        // Out-of-range choices clamp to the last index.
        assert_eq!(s.pick(&pids(4)), 3);
        // Prefix exhausted: FIFO.
        assert_eq!(s.pick(&pids(4)), 0);
    }
}
