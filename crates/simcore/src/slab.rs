//! A slab arena with free-list recycling for kernel event nodes.
//!
//! The event queue allocates one node per scheduled event. Routing those
//! through the global allocator puts a malloc/free pair on the hottest
//! path of the simulator; the [`Slab`] instead keeps every node in one
//! growable `Vec` and recycles removed slots through an intrusive free
//! list, so steady-state scheduling performs **zero heap allocations** —
//! the arena only grows when the number of simultaneously pending items
//! exceeds every previous high-water mark.
//!
//! Indices are `u32` handles: half the size of a pointer, trivially
//! copyable into slot lists and overflow heaps, and dense enough that a
//! future parallel-shard kernel can ship them across shard boundaries
//! (each shard owns its own arena; see DESIGN.md, "Kernel internals").
//!
//! Accounting is first-class — [`Slab::allocated`] / [`Slab::recycled`]
//! feed the zero-allocation assertions in the kernel bench and tests.

/// Sentinel index meaning "no node" (list terminator / empty slot).
pub const NIL: u32 = u32::MAX;

enum Entry<T> {
    Occupied(T),
    Free { next: u32 },
}

/// A growable arena of `T` with O(1) insert/remove and free-list reuse.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    free_len: usize,
    allocated: u64,
    recycled: u64,
}

impl<T> Slab<T> {
    /// An empty slab (no allocation until the first insert).
    pub fn new() -> Slab<T> {
        Slab { entries: Vec::new(), free_head: NIL, free_len: 0, allocated: 0, recycled: 0 }
    }

    /// Inserts `value`, returning its index. Reuses a freed slot when one
    /// is available; only grows the backing `Vec` otherwise.
    pub fn insert(&mut self, value: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.entries[idx as usize];
            match *slot {
                Entry::Free { next } => self.free_head = next,
                Entry::Occupied(_) => unreachable!("free list points at an occupied slot"),
            }
            *slot = Entry::Occupied(value);
            self.free_len -= 1;
            self.recycled += 1;
            idx
        } else {
            assert!(self.entries.len() < NIL as usize, "slab index space exhausted");
            self.allocated += 1;
            self.entries.push(Entry::Occupied(value));
            (self.entries.len() - 1) as u32
        }
    }

    /// Removes and returns the value at `idx`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not an occupied slot.
    pub fn remove(&mut self, idx: u32) -> T {
        let slot = &mut self.entries[idx as usize];
        let prev = std::mem::replace(slot, Entry::Free { next: self.free_head });
        match prev {
            Entry::Occupied(v) => {
                self.free_head = idx;
                self.free_len += 1;
                v
            }
            Entry::Free { .. } => panic!("slab remove of a free slot {idx}"),
        }
    }

    /// A shared reference to the value at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not an occupied slot.
    pub fn get(&self, idx: u32) -> &T {
        match &self.entries[idx as usize] {
            Entry::Occupied(v) => v,
            Entry::Free { .. } => panic!("slab get of a free slot {idx}"),
        }
    }

    /// A mutable reference to the value at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not an occupied slot.
    pub fn get_mut(&mut self, idx: u32) -> &mut T {
        match &mut self.entries[idx as usize] {
            Entry::Occupied(v) => v,
            Entry::Free { .. } => panic!("slab get_mut of a free slot {idx}"),
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.entries.len() - self.free_len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever created (occupied + free): the high-water mark of
    /// simultaneously pending items.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Fresh nodes created since construction. Stops growing once the
    /// arena reaches its steady-state working set — the zero-allocation
    /// property the kernel bench asserts.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Inserts served from the free list (no heap traffic).
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("allocated", &self.allocated)
            .field("recycled", &self.recycled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_eq!(s.get(a), "a");
        assert_eq!(s.get(b), "b");
        s.get_mut(a).push('!');
        assert_eq!(s.remove(a), "a!");
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(b), "b");
        assert!(s.is_empty());
    }

    #[test]
    fn freed_slots_are_recycled_lifo() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        s.remove(a);
        s.remove(b);
        // LIFO: the most recently freed slot is reused first.
        assert_eq!(s.insert(3), b);
        assert_eq!(s.insert(4), a);
        assert_eq!(s.allocated(), 2);
        assert_eq!(s.recycled(), 2);
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut s: Slab<u64> = Slab::new();
        // Warm up to a working set of 8.
        let mut live: Vec<u32> = (0..8).map(|i| s.insert(i)).collect();
        let high_water = s.allocated();
        for round in 0..1000u64 {
            let idx = live.remove((round % 8) as usize);
            s.remove(idx);
            live.push(s.insert(round));
        }
        assert_eq!(s.allocated(), high_water, "steady state must not allocate");
        assert_eq!(s.recycled(), 1000);
    }

    #[test]
    #[should_panic(expected = "free slot")]
    fn double_remove_panics() {
        let mut s: Slab<u8> = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        s.remove(a);
    }
}
