//! A `u32` string interner for hot-path names.
//!
//! Span names, categories, process names, metric names, and annotation
//! keys come from a small fixed vocabulary (`"dso.call"`, `"dso"`, …) yet
//! were stored as a fresh `String` per record — three allocations per span
//! on the tracing hot path. A [`SymbolTable`] stores each distinct string
//! once and hands out copyable [`Sym`] handles; records store the handle
//! and exports resolve it back with no per-record allocation.
//!
//! This generalizes the `MethodName` interner in the DSO layer: same
//! idea, but table-scoped (one table per [`crate::Tracer`]) rather than
//! global, so simulations stay independent and deterministic.
//!
//! Interning order is first-appearance order, which under a deterministic
//! schedule is itself deterministic — resolved output is byte-identical
//! across identically-seeded runs.

use std::collections::HashMap;
use std::sync::Arc;

/// Handle to an interned string (index into its [`SymbolTable`]).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(u32);

/// An append-only string interner: `&str` in, [`Sym`] out, resolve back.
#[derive(Default, Debug)]
pub struct SymbolTable {
    /// Sym index → string. `Arc<str>` so the lookup map shares storage.
    strings: Vec<Arc<str>>,
    /// String → sym index.
    lookup: HashMap<Arc<str>, u32>,
}

impl SymbolTable {
    /// Interns `s`, allocating only on first appearance.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&idx) = self.lookup.get(s) {
            return Sym(idx);
        }
        let idx = u32::try_from(self.strings.len()).expect("symbol table exhausted");
        let owned: Arc<str> = Arc::from(s);
        self.strings.push(owned.clone());
        self.lookup.insert(owned, idx);
        Sym(idx)
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different table.
    pub fn get(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_and_resolves() {
        let mut t = SymbolTable::default();
        let a = t.intern("dso.call");
        let b = t.intern("dso");
        let a2 = t.intern("dso.call");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.get(a), "dso.call");
        assert_eq!(t.get(b), "dso");
        assert_eq!(t.strings.len(), 2);
    }

    #[test]
    fn syms_allocate_in_first_appearance_order() {
        let mut t = SymbolTable::default();
        let syms: Vec<Sym> = ["c", "a", "b", "a", "c"].iter().map(|s| t.intern(s)).collect();
        assert_eq!(syms[0], syms[4]);
        assert_eq!(syms[1], syms[3]);
        assert_eq!(t.strings.len(), 3);
        assert_eq!(t.get(syms[2]), "b");
    }
}
