//! In-simulation synchronization primitives.
//!
//! These coordinate *simulated processes on the same machine* — the
//! "plain old Java objects" baselines of the paper (e.g. the local
//! Santa Claus solution, or a client joining its cloud threads). They cost
//! (virtually) nothing and resolve contention in deterministic FIFO order.
//!
//! For *distributed* synchronization across cloud threads, use the DSO
//! synchronization objects from the `dso` crate instead.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::detect::WaitKind;
use crate::kernel::{Addr, Ctx, Msg, Pid, Sim};

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

/// Creates a one-shot channel carrying a single `T` between two processes.
///
/// # Examples
///
/// ```
/// use simcore::{Sim, sync::oneshot};
/// use std::time::Duration;
///
/// let mut sim = Sim::new(1);
/// let (tx, rx) = oneshot::<u32>(&sim);
/// sim.spawn("producer", move |ctx| {
///     ctx.sleep(Duration::from_millis(1));
///     tx.send(ctx, 42);
/// });
/// sim.spawn("consumer", move |ctx| {
///     assert_eq!(rx.recv(ctx), 42);
/// });
/// sim.run_until_idle().expect_quiescent();
/// ```
pub fn oneshot<T: Send + 'static>(sim: &Sim) -> (OneshotSender<T>, OneshotReceiver<T>) {
    let mb = sim.mailbox("oneshot");
    (
        OneshotSender { mb, _ty: std::marker::PhantomData },
        OneshotReceiver { mb, _ty: std::marker::PhantomData },
    )
}

/// Creates a one-shot channel from inside a process.
pub fn oneshot_in<T: Send + 'static>(ctx: &mut Ctx) -> (OneshotSender<T>, OneshotReceiver<T>) {
    let mb = ctx.shared_mailbox("oneshot");
    (
        OneshotSender { mb, _ty: std::marker::PhantomData },
        OneshotReceiver { mb, _ty: std::marker::PhantomData },
    )
}

/// Sending half of a one-shot channel.
pub struct OneshotSender<T> {
    mb: Addr,
    _ty: std::marker::PhantomData<fn(T)>,
}

impl<T> fmt::Debug for OneshotSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OneshotSender").field("mb", &self.mb).finish()
    }
}

impl<T: Send + 'static> OneshotSender<T> {
    /// Delivers the value (instantaneously, in virtual time).
    pub fn send(self, ctx: &mut Ctx, value: T) {
        ctx.send(self.mb, Msg::new(value), std::time::Duration::ZERO);
    }
}

/// Receiving half of a one-shot channel.
pub struct OneshotReceiver<T> {
    mb: Addr,
    _ty: std::marker::PhantomData<fn() -> T>,
}

impl<T> fmt::Debug for OneshotReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OneshotReceiver").field("mb", &self.mb).finish()
    }
}

impl<T: Send + 'static> OneshotReceiver<T> {
    /// Blocks until the value arrives.
    pub fn recv(self, ctx: &mut Ctx) -> T {
        let m = ctx.recv(self.mb);
        ctx.close_mailbox(self.mb);
        m.take::<T>()
    }
}

// ---------------------------------------------------------------------------
// Monitor (Java-style)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MonState {
    holder: Option<Pid>,
    entry_q: VecDeque<Pid>,
    wait_q: VecDeque<Pid>,
}

/// A Java-style monitor: a mutex with `wait`/`notify`/`notify_all`.
///
/// Lock handoff and wakeups are FIFO, so simulations are deterministic.
/// Operations take negligible virtual time (they model memory operations on
/// a single machine).
///
/// # Examples
///
/// ```
/// use simcore::{Sim, sync::Monitor};
/// use std::time::Duration;
///
/// let mut sim = Sim::new(1);
/// let m = Monitor::new("m");
/// let flag = std::sync::Arc::new(parking_lot::Mutex::new(false));
///
/// let (m2, flag2) = (m.clone(), flag.clone());
/// sim.spawn("waiter", move |ctx| {
///     m2.enter(ctx);
///     while !*flag2.lock() {
///         m2.wait(ctx);
///     }
///     m2.exit(ctx);
/// });
/// sim.spawn("setter", move |ctx| {
///     ctx.sleep(Duration::from_millis(1));
///     m.enter(ctx);
///     *flag.lock() = true;
///     m.notify(ctx);
///     m.exit(ctx);
/// });
/// sim.run_until_idle().expect_quiescent();
/// ```
#[derive(Clone)]
pub struct Monitor {
    name: Arc<String>,
    state: Arc<Mutex<MonState>>,
}

impl fmt::Debug for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Monitor({})", self.name)
    }
}

impl Monitor {
    /// Creates a monitor.
    pub fn new(name: &str) -> Monitor {
        Monitor {
            name: Arc::new(name.to_string()),
            state: Arc::new(Mutex::new(MonState::default())),
        }
    }

    /// Stable identity of this monitor for the deadlock detector's
    /// wait-for graph (clones share state, hence identity).
    ///
    /// The id is an `Arc` pointer, so its *value* differs run to run
    /// (ASLR). That is fine for the diagnostic wait-for graph — which
    /// only needs same-run identity — but the marker below tells
    /// `simanalyze` to taint anything that would carry this value into
    /// simulation state, protocol messages or trace ordering.
    // simanalyze: nondet_source
    fn resource_id(&self) -> u64 {
        Arc::as_ptr(&self.state) as u64
    }

    /// Acquires the monitor, blocking while another process holds it.
    pub fn enter(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        let acquired = {
            let mut st = self.state.lock();
            if st.holder.is_none() {
                st.holder = Some(me);
                true
            } else {
                assert_ne!(st.holder, Some(me), "monitor {} is not reentrant", self.name);
                st.entry_q.push_back(me);
                false
            }
        };
        if acquired {
            ctx.resource_acquired(self.resource_id(), &self.name);
            return;
        }
        ctx.annotate_wait(
            self.resource_id(),
            WaitKind::Lock,
            self.name.as_str(),
            format!("Monitor::enter({})", self.name),
        );
        ctx.park();
        debug_assert_eq!(self.state.lock().holder, Some(me), "woken as holder");
    }

    /// Releases the monitor.
    ///
    /// # Panics
    ///
    /// Panics if the calling process does not hold it.
    pub fn exit(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        let next = {
            let mut st = self.state.lock();
            assert_eq!(st.holder, Some(me), "exit of monitor {} by non-holder", self.name);
            match st.entry_q.pop_front() {
                Some(n) => {
                    st.holder = Some(n);
                    Some(n)
                }
                None => {
                    st.holder = None;
                    None
                }
            }
        };
        match next {
            Some(n) => {
                ctx.resource_passed(self.resource_id(), n, &self.name);
                ctx.unpark(n);
            }
            None => ctx.resource_released(self.resource_id()),
        }
    }

    /// Atomically releases the monitor and waits for a notification; the
    /// monitor is re-held when `wait` returns.
    ///
    /// # Panics
    ///
    /// Panics if the calling process does not hold the monitor.
    pub fn wait(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        let next = {
            let mut st = self.state.lock();
            assert_eq!(st.holder, Some(me), "wait on monitor {} by non-holder", self.name);
            st.wait_q.push_back(me);
            match st.entry_q.pop_front() {
                Some(n) => {
                    st.holder = Some(n);
                    Some(n)
                }
                None => {
                    st.holder = None;
                    None
                }
            }
        };
        match next {
            Some(n) => {
                ctx.resource_passed(self.resource_id(), n, &self.name);
                ctx.unpark(n);
            }
            None => ctx.resource_released(self.resource_id()),
        }
        ctx.annotate_wait(
            self.resource_id(),
            WaitKind::Condition,
            self.name.as_str(),
            format!("Monitor::wait({})", self.name),
        );
        // Parked until a notify moves us to the entry queue *and* the lock
        // is handed to us.
        ctx.park();
        debug_assert_eq!(self.state.lock().holder, Some(me), "woken as holder");
    }

    /// Moves one waiter to the entry queue (it will run once the lock frees).
    ///
    /// # Panics
    ///
    /// Panics if the calling process does not hold the monitor.
    pub fn notify(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        let mut st = self.state.lock();
        assert_eq!(st.holder, Some(me), "notify on monitor {} by non-holder", self.name);
        if let Some(w) = st.wait_q.pop_front() {
            st.entry_q.push_back(w);
        }
    }

    /// Moves all waiters to the entry queue.
    ///
    /// # Panics
    ///
    /// Panics if the calling process does not hold the monitor.
    pub fn notify_all(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        let mut st = self.state.lock();
        assert_eq!(st.holder, Some(me), "notify_all on monitor {} by non-holder", self.name);
        while let Some(w) = st.wait_q.pop_front() {
            st.entry_q.push_back(w);
        }
    }

    /// Runs `f` while holding the monitor. `f` must not call [`Monitor::wait`].
    pub fn with<R>(&self, ctx: &mut Ctx, f: impl FnOnce(&mut Ctx) -> R) -> R {
        self.enter(ctx);
        let r = f(ctx);
        self.exit(ctx);
        r
    }
}

// ---------------------------------------------------------------------------
// WaitGroup
// ---------------------------------------------------------------------------

/// Counts down from `n`; `wait` blocks until zero. The local analogue of
/// joining `n` threads.
#[derive(Clone)]
pub struct WaitGroup {
    monitor: Monitor,
    left: Arc<Mutex<usize>>,
}

impl fmt::Debug for WaitGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WaitGroup(left={})", *self.left.lock())
    }
}

impl WaitGroup {
    /// Creates a group expecting `n` completions.
    pub fn new(n: usize) -> WaitGroup {
        WaitGroup { monitor: Monitor::new("waitgroup"), left: Arc::new(Mutex::new(n)) }
    }

    /// Signals one completion.
    ///
    /// # Panics
    ///
    /// Panics if called more than `n` times.
    pub fn done(&self, ctx: &mut Ctx) {
        self.monitor.enter(ctx);
        {
            let mut left = self.left.lock();
            assert!(*left > 0, "WaitGroup::done called too many times");
            *left -= 1;
        }
        if *self.left.lock() == 0 {
            self.monitor.notify_all(ctx);
        }
        self.monitor.exit(ctx);
    }

    /// Blocks until all `n` completions have been signalled.
    pub fn wait(&self, ctx: &mut Ctx) {
        self.monitor.enter(ctx);
        while *self.left.lock() > 0 {
            self.monitor.wait(ctx);
        }
        self.monitor.exit(ctx);
    }
}

// ---------------------------------------------------------------------------
// LocalBarrier
// ---------------------------------------------------------------------------

/// A cyclic barrier for simulated processes on the same machine (the
/// local analogue of the DSO `CyclicBarrier`).
#[derive(Clone)]
pub struct LocalBarrier {
    monitor: Monitor,
    state: Arc<Mutex<(usize, u64)>>, // (waiting, generation)
    parties: usize,
}

impl fmt::Debug for LocalBarrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocalBarrier(parties={})", self.parties)
    }
}

impl LocalBarrier {
    /// Creates a barrier for `parties` processes.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> LocalBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        LocalBarrier {
            monitor: Monitor::new("local-barrier"),
            state: Arc::new(Mutex::new((0, 0))),
            parties,
        }
    }

    /// Blocks until all parties arrive; returns the generation index.
    pub fn wait(&self, ctx: &mut Ctx) -> u64 {
        self.monitor.enter(ctx);
        let my_generation = {
            let mut st = self.state.lock();
            st.0 += 1;
            st.1
        };
        if self.state.lock().0 == self.parties {
            // Last arrival: open the next generation and release everyone.
            {
                let mut st = self.state.lock();
                st.0 = 0;
                st.1 += 1;
            }
            self.monitor.notify_all(ctx);
        } else {
            while self.state.lock().1 == my_generation {
                self.monitor.wait(ctx);
            }
        }
        self.monitor.exit(ctx);
        my_generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn monitor_mutual_exclusion_and_fifo() {
        let mut sim = Sim::new(1);
        let m = Monitor::new("m");
        let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5u32 {
            let m = m.clone();
            let order = order.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                // Stagger arrival so the queue order is i-ascending.
                ctx.sleep(Duration::from_micros(i as u64));
                m.enter(ctx);
                order.lock().push(i);
                ctx.sleep(Duration::from_millis(1)); // hold across time
                m.exit(ctx);
            });
        }
        sim.run_until_idle().expect_quiescent();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wait_notify() {
        let mut sim = Sim::new(1);
        let m = Monitor::new("m");
        let data: Arc<Mutex<Option<u32>>> = Arc::new(Mutex::new(None));
        {
            let m = m.clone();
            let data = data.clone();
            sim.spawn("consumer", move |ctx| {
                m.enter(ctx);
                while data.lock().is_none() {
                    m.wait(ctx);
                }
                assert_eq!(*data.lock(), Some(9));
                m.exit(ctx);
                assert_eq!(ctx.now(), crate::SimTime::from_millis(2));
            });
        }
        sim.spawn("producer", move |ctx| {
            ctx.sleep(Duration::from_millis(2));
            m.enter(ctx);
            *data.lock() = Some(9);
            m.notify(ctx);
            m.exit(ctx);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let mut sim = Sim::new(1);
        let m = Monitor::new("m");
        let go = Arc::new(Mutex::new(false));
        let done = Arc::new(Mutex::new(0u32));
        for i in 0..4 {
            let (m, go, done) = (m.clone(), go.clone(), done.clone());
            sim.spawn(&format!("w{i}"), move |ctx| {
                m.enter(ctx);
                while !*go.lock() {
                    m.wait(ctx);
                }
                *done.lock() += 1;
                m.exit(ctx);
            });
        }
        sim.spawn("broadcaster", move |ctx| {
            ctx.sleep(Duration::from_millis(1));
            m.enter(ctx);
            *go.lock() = true;
            m.notify_all(ctx);
            m.exit(ctx);
        });
        sim.run_until_idle().expect_quiescent();
        assert_eq!(*done.lock(), 4);
    }

    #[test]
    fn waitgroup_joins() {
        let mut sim = Sim::new(1);
        let wg = WaitGroup::new(3);
        for i in 0..3u64 {
            let wg = wg.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.sleep(Duration::from_millis(i + 1));
                wg.done(ctx);
            });
        }
        sim.spawn("joiner", move |ctx| {
            wg.wait(ctx);
            assert_eq!(ctx.now(), crate::SimTime::from_millis(3));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn oneshot_from_ctx() {
        let mut sim = Sim::new(1);
        sim.spawn("parent", move |ctx| {
            let (tx, rx) = oneshot_in::<String>(ctx);
            ctx.spawn("child", move |c| {
                c.sleep(Duration::from_millis(7));
                tx.send(c, "done".to_string());
            });
            assert_eq!(rx.recv(ctx), "done");
            assert_eq!(ctx.now(), crate::SimTime::from_millis(7));
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn exit_without_enter_panics() {
        let mut sim = Sim::new(1);
        let m = Monitor::new("m");
        sim.spawn("bad", move |ctx| {
            m.exit(ctx);
        });
        sim.run_until_idle();
    }

    #[test]
    fn local_barrier_releases_together_and_is_cyclic() {
        let mut sim = Sim::new(1);
        let b = LocalBarrier::new(3);
        let releases = Arc::new(Mutex::new(Vec::<(u64, u64)>::new()));
        for i in 0..3u64 {
            let b = b.clone();
            let releases = releases.clone();
            sim.spawn(&format!("t{i}"), move |ctx| {
                for _round in 0..2 {
                    ctx.sleep(Duration::from_millis(i + 1));
                    let generation = b.wait(ctx);
                    releases.lock().push((generation, ctx.now().as_nanos()));
                }
            });
        }
        sim.run_until_idle().expect_quiescent();
        let rel = releases.lock();
        assert_eq!(rel.len(), 6);
        let g0: Vec<u64> = rel.iter().filter(|(g, _)| *g == 0).map(|(_, t)| *t).collect();
        assert_eq!(g0.len(), 3);
        assert!(g0.iter().all(|t| *t == g0[0]), "same release instant {g0:?}");
        assert_eq!(rel.iter().filter(|(g, _)| *g == 1).count(), 3);
    }
}
