//! Virtual time for the simulation.
//!
//! [`SimTime`] is an absolute instant on the simulated clock, measured in
//! nanoseconds since the start of the run. Durations are plain
//! [`std::time::Duration`] values, so application code reads naturally
//! (`ctx.sleep(Duration::from_micros(90))`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated clock.
///
/// `SimTime` is a monotone, deterministic clock: it only advances when the
/// simulation kernel processes events, never because of wall-clock time.
///
/// # Examples
///
/// ```
/// use simcore::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime { nanos: 0 };

    /// Creates a `SimTime` from a nanosecond count.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Creates a `SimTime` a whole number of seconds after the start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime { nanos: secs * 1_000_000_000 }
    }

    /// Creates a `SimTime` a whole number of milliseconds after the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime { nanos: ms * 1_000_000 }
    }

    /// Creates a `SimTime` a whole number of microseconds after the start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime { nanos: us * 1_000 }
    }

    /// Nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds since the start of the simulation, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(
            self.nanos
                .checked_sub(earlier.nanos)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// Adds a duration, saturating at the maximum representable instant.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime { nanos: self.nanos.saturating_add(d.as_nanos().min(u64::MAX as u128) as u64) }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.nanos / 1_000_000_000;
        let frac = self.nanos % 1_000_000_000;
        write!(f, "{s}.{:06}s", frac / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::ZERO + Duration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + Duration::from_secs(1);
        assert_eq!(t2.as_nanos(), 1_000_005_000);
    }

    #[test]
    fn duration_since() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(b.duration_since(a), Duration::from_millis(15));
        assert_eq!(b - a, Duration::from_millis(15));
        assert_eq!(a.saturating_duration_since(b), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier instant is later")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_millis(1).duration_since(SimTime::from_millis(2));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::from_secs(1) == SimTime::from_millis(1000));
    }

    #[test]
    fn display_is_seconds_with_micros() {
        let t = SimTime::from_nanos(1_234_567_890);
        assert_eq!(t.to_string(), "1.234567s");
        assert_eq!(format!("{:?}", t), "SimTime(1.234567s)");
    }

    #[test]
    fn saturating_add_caps() {
        let t = SimTime::from_nanos(u64::MAX - 1);
        let t2 = t.saturating_add(Duration::from_secs(10));
        assert_eq!(t2.as_nanos(), u64::MAX);
    }

    #[test]
    fn as_secs_f64() {
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
