//! Virtual-time timer helpers for daemon loops.
//!
//! Long-running simulated daemons (DSO heartbeats, the control plane's
//! reconcile loop) all share the same shape: wake periodically, do a little
//! work, go back to waiting — possibly while also serving a mailbox. The
//! hand-rolled version of that pattern (`next = now + interval` threaded
//! through a `recv_timeout` loop) is easy to get subtly wrong, so
//! [`Ticker`] packages it. Everything here is pure virtual time: the only
//! clock a `Ticker` ever sees is [`SimTime`], so identically-seeded runs
//! tick identically.
//!
//! # Examples
//!
//! A pure periodic daemon:
//!
//! ```
//! use simcore::{Sim, Ticker};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(1);
//! sim.spawn("ticker", |ctx| {
//!     let mut t = Ticker::new(ctx.now(), Duration::from_millis(100));
//!     for _ in 0..3 {
//!         t.wait(ctx);
//!     }
//!     assert_eq!(ctx.now(), simcore::SimTime::from_millis(300));
//! });
//! sim.run_until_idle().expect_quiescent();
//! ```

use std::time::Duration;

use crate::kernel::Ctx;
use crate::time::SimTime;

/// A periodic virtual-time timer for daemon loops.
///
/// Two usage styles:
///
/// * **Pure timer**: call [`Ticker::wait`] in a loop — it sleeps to the
///   next deadline and advances.
/// * **Timer + mailbox**: pass [`Ticker::remaining`] as the timeout of a
///   `recv_timeout`, then call [`Ticker::poll`] to test (and consume) a
///   due tick — the DSO server's heartbeat pattern.
///
/// Deadlines are *drift-tolerant*: firing re-arms at `now + interval`
/// rather than back-filling missed periods, so a daemon that overruns one
/// tick does not burst to catch up (membership heartbeats and reconcile
/// loops want pacing, not a fixed phase).
#[derive(Clone, Debug)]
pub struct Ticker {
    interval: Duration,
    next: SimTime,
}

impl Ticker {
    /// A ticker whose first deadline is `now + interval`.
    pub fn new(now: SimTime, interval: Duration) -> Ticker {
        Ticker { interval, next: now + interval }
    }

    /// The period.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The next deadline.
    pub fn deadline(&self) -> SimTime {
        self.next
    }

    /// Time left until the next deadline ([`Duration::ZERO`] when due) —
    /// suitable as a `recv_timeout` timeout.
    pub fn remaining(&self, now: SimTime) -> Duration {
        self.next.saturating_duration_since(now)
    }

    /// Whether the deadline has arrived, consuming the tick: when due,
    /// re-arms at `now + interval` and returns `true`.
    pub fn poll(&mut self, now: SimTime) -> bool {
        if now >= self.next {
            self.next = now + self.interval;
            true
        } else {
            false
        }
    }

    /// Sleeps (in virtual time) until the next deadline and consumes the
    /// tick. Returns the fire time.
    pub fn wait(&mut self, ctx: &mut Ctx) -> SimTime {
        let rem = self.remaining(ctx.now());
        if !rem.is_zero() {
            ctx.sleep(rem);
        }
        let now = ctx.now();
        self.next = now + self.interval;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;

    #[test]
    fn remaining_and_poll() {
        let t0 = SimTime::from_millis(10);
        let mut t = Ticker::new(t0, Duration::from_millis(100));
        assert_eq!(t.interval(), Duration::from_millis(100));
        assert_eq!(t.deadline(), SimTime::from_millis(110));
        assert_eq!(t.remaining(t0), Duration::from_millis(100));
        assert!(!t.poll(SimTime::from_millis(109)));
        assert!(t.poll(SimTime::from_millis(110)));
        // Re-armed relative to the fire time, not the old deadline.
        assert_eq!(t.deadline(), SimTime::from_millis(210));
        assert_eq!(t.remaining(SimTime::from_millis(250)), Duration::ZERO, "overdue clamps");
    }

    #[test]
    fn overrun_does_not_burst() {
        let mut t = Ticker::new(SimTime::ZERO, Duration::from_millis(100));
        // The daemon was busy for 350 ms: exactly one tick fires, and the
        // next deadline is one full interval later.
        assert!(t.poll(SimTime::from_millis(350)));
        assert!(!t.poll(SimTime::from_millis(350)));
        assert_eq!(t.deadline(), SimTime::from_millis(450));
    }

    #[test]
    fn wait_advances_virtual_time() {
        let mut sim = Sim::new(3);
        sim.spawn("w", |ctx| {
            let mut t = Ticker::new(ctx.now(), Duration::from_millis(50));
            let first = t.wait(ctx);
            assert_eq!(first, SimTime::from_millis(50));
            let second = t.wait(ctx);
            assert_eq!(second, SimTime::from_millis(100));
        });
        sim.run_until_idle().expect_quiescent();
    }
}
