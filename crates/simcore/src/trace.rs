//! Sim-time distributed tracing.
//!
//! A [`Tracer`] collects *spans* — named intervals of virtual time with
//! parent/child links — from every process of a simulation. Spans cross
//! process (and simulated network) boundaries through [`TraceCtx`], a
//! serializable causality token carried inside protocol messages, so a
//! single logical request can be followed from the client call through the
//! FaaS container into the storage tier and its replication rounds.
//!
//! Determinism: every timestamp is a [`SimTime`] taken from the kernel
//! clock, span ids are allocated in execution order, and the exporters
//! iterate in allocation order — two identically-seeded runs therefore
//! produce byte-identical exports. No wall clock is ever consulted.
//!
//! Hot-path cost: recording stores a compact row — names, categories,
//! process names, and annotation keys are interned behind `u32` symbols
//! (see [`crate::symbol`]), so a span begin/end performs no string
//! allocation after a name's first appearance. The exporters stream
//! straight from the rows and the symbol table under the lock, formatting
//! integers through a stack buffer; they never clone the span buffer.
//! [`Tracer::spans`] materializes owned [`SpanRecord`]s for tests and
//! ad-hoc inspection.
//!
//! Exports: [`Tracer::export_chrome_json`] writes the Chrome trace-event
//! format (load it in `chrome://tracing` or Perfetto), and
//! [`Tracer::export_jsonl`] writes one JSON object per span for ad-hoc
//! processing.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::symbol::{Sym, SymbolTable};
use crate::time::SimTime;

/// Identifier of a span. `SpanId::NONE` (zero) means "no span": it is the
/// parent of root spans and the value carried by untraced requests.
///
/// Ids are plain integers so they can travel inside serialized protocol
/// messages; they are only meaningful relative to the [`Tracer`] of the
/// simulation that allocated them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots, untraced requests).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanId({})", self.0)
    }
}

/// The causality token a process propagates to work it causes elsewhere:
/// the current span under which new spans are parented.
///
/// Each process carries a current `TraceCtx` (see `Ctx::trace_ctx` /
/// `Ctx::set_trace_ctx` in the kernel); infrastructure code ships the
/// current span id inside its protocol messages and the receiving process
/// adopts it, re-rooting its own spans under the sender's.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The span new work should be parented under.
    pub span: SpanId,
}

impl TraceCtx {
    /// A root context: spans started under it have no parent.
    pub fn root() -> TraceCtx {
        TraceCtx { span: SpanId::NONE }
    }

    /// A context parenting new spans under `span`.
    pub fn under(span: SpanId) -> TraceCtx {
        TraceCtx { span }
    }
}

/// Whether a record is an interval or a point event.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// An interval with a start and an end.
    Span,
    /// A zero-duration point event.
    Instant,
}

/// One recorded span, resolved to owned strings.
///
/// This is the *snapshot* type returned by [`Tracer::spans`]; internally
/// the tracer stores compact rows with interned names and only resolves
/// them on request.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Parent span ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// Span name, e.g. `"dso.call"`.
    pub name: String,
    /// Category, e.g. `"dso"` — becomes the Chrome-trace `cat` field.
    pub cat: String,
    /// Name of the process that began the span.
    pub proc_name: String,
    /// Pid of the process that began the span (the Chrome-trace `tid`).
    pub pid: u64,
    /// Virtual time the span began.
    pub start: SimTime,
    /// Virtual time the span ended; `None` while still open (exports treat
    /// open spans as zero-length).
    pub end: Option<SimTime>,
    /// Interval or instant.
    pub kind: SpanKind,
    /// Key/value annotations, in insertion order.
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's duration (zero while open).
    pub fn duration(&self) -> std::time::Duration {
        self.end.unwrap_or(self.start).saturating_duration_since(self.start)
    }
}

/// The compact stored form of a span: names are interned [`Sym`]s, the id
/// is implicit (row `i` has id `i + 1`). Annotation *values* stay owned —
/// they are dynamic data (object names, counts), not vocabulary.
struct SpanRow {
    parent: SpanId,
    name: Sym,
    cat: Sym,
    proc_name: Sym,
    pid: u64,
    start: SimTime,
    end: Option<SimTime>,
    kind: SpanKind,
    args: Vec<(Sym, String)>,
}

impl SpanRow {
    /// Duration in nanoseconds (zero while open).
    fn dur_ns(&self) -> u64 {
        let end = self.end.unwrap_or(self.start);
        end.as_nanos().saturating_sub(self.start.as_nanos())
    }
}

#[derive(Default)]
struct TracerInner {
    /// Next id to allocate; ids start at 1 so that 0 can mean "none".
    next: u64,
    /// All rows, in allocation order (row `i` has id `i + 1`).
    rows: Vec<SpanRow>,
    /// Interned vocabulary for names, categories, processes, arg keys.
    symbols: SymbolTable,
}

impl TracerInner {
    fn get_mut(&mut self, id: SpanId) -> Option<&mut SpanRow> {
        if id.is_none() {
            return None;
        }
        self.rows.get_mut((id.0 - 1) as usize)
    }

    /// Resolves row `i` into an owned snapshot record.
    fn resolve(&self, i: usize) -> SpanRecord {
        let r = &self.rows[i];
        SpanRecord {
            id: SpanId(i as u64 + 1),
            parent: r.parent,
            name: self.symbols.get(r.name).to_string(),
            cat: self.symbols.get(r.cat).to_string(),
            proc_name: self.symbols.get(r.proc_name).to_string(),
            pid: r.pid,
            start: r.start,
            end: r.end,
            kind: r.kind,
            args: r
                .args
                .iter()
                .map(|(k, v)| (self.symbols.get(*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

/// Collects spans from every process of a simulation; cheap to clone
/// (clones share state). Install it on a `Sim` with `Sim::set_tracer`, then
/// read or export after the run.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Begins a span at `now`. Prefer the `Ctx::span_begin` family inside
    /// simulated processes; this low-level entry exists for tests and
    /// host-side harness code.
    pub fn begin(
        &self,
        now: SimTime,
        pid: u64,
        proc_name: &str,
        parent: SpanId,
        name: &str,
        cat: &str,
    ) -> SpanId {
        self.push(now, pid, proc_name, parent, name, cat, SpanKind::Span)
    }

    /// Records a point event at `now`.
    pub fn instant(
        &self,
        now: SimTime,
        pid: u64,
        proc_name: &str,
        parent: SpanId,
        name: &str,
        cat: &str,
    ) -> SpanId {
        self.push(now, pid, proc_name, parent, name, cat, SpanKind::Instant)
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &self,
        now: SimTime,
        pid: u64,
        proc_name: &str,
        parent: SpanId,
        name: &str,
        cat: &str,
        kind: SpanKind,
    ) -> SpanId {
        let mut g = self.inner.lock();
        g.next += 1;
        let id = SpanId(g.next);
        let name = g.symbols.intern(name);
        let cat = g.symbols.intern(cat);
        let proc_name = g.symbols.intern(proc_name);
        g.rows.push(SpanRow {
            parent,
            name,
            cat,
            proc_name,
            pid,
            start: now,
            end: if kind == SpanKind::Instant { Some(now) } else { None },
            kind,
            args: Vec::new(),
        });
        id
    }

    /// Ends a span at `now`. Ending [`SpanId::NONE`], an unknown id, or an
    /// already-ended span is a no-op.
    pub fn end(&self, id: SpanId, now: SimTime) {
        let mut g = self.inner.lock();
        if let Some(rec) = g.get_mut(id) {
            if rec.end.is_none() {
                rec.end = Some(now);
            }
        }
    }

    /// Attaches a `key = value` annotation to a span (no-op for
    /// [`SpanId::NONE`] or unknown ids). The key is interned; the value is
    /// stored as given.
    pub fn annotate(&self, id: SpanId, key: &str, value: impl Into<String>) {
        let mut g = self.inner.lock();
        let key = g.symbols.intern(key);
        if let Some(rec) = g.get_mut(id) {
            rec.args.push((key, value.into()));
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.inner.lock().rows.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every record, in allocation order, resolved to owned
    /// strings. This materializes a fresh vector — use it for tests and
    /// inspection; the `export_*` methods stream without snapshotting.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let g = self.inner.lock();
        (0..g.rows.len()).map(|i| g.resolve(i)).collect()
    }

    /// Snapshot of the records whose name equals `name`.
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        let g = self.inner.lock();
        (0..g.rows.len())
            .filter(|&i| g.symbols.get(g.rows[i].name) == name)
            .map(|i| g.resolve(i))
            .collect()
    }

    /// Exports the Chrome trace-event format (`chrome://tracing`,
    /// Perfetto). Deterministic: byte-identical across identically-seeded
    /// runs. Each simulated process becomes one named thread track.
    ///
    /// Streams from the stored rows under the lock: no span clone, no
    /// per-span allocation beyond the output string itself.
    pub fn export_chrome_json(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::with_capacity(128 + g.rows.len() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // Thread-name metadata: one per distinct pid, in pid order.
        let mut names: BTreeMap<u64, Sym> = BTreeMap::new();
        for r in &g.rows {
            names.entry(r.pid).or_insert(r.proc_name);
        }
        for (pid, name) in &names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            push_u64(&mut out, *pid);
            out.push_str(",\"args\":{\"name\":");
            json_string(&mut out, g.symbols.get(*name));
            out.push_str("}}");
        }
        for (i, r) in g.rows.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            json_string(&mut out, g.symbols.get(r.name));
            out.push_str(",\"cat\":");
            json_string(&mut out, g.symbols.get(r.cat));
            match r.kind {
                SpanKind::Span => {
                    out.push_str(",\"ph\":\"X\",\"ts\":");
                    micros(&mut out, r.start.as_nanos());
                    out.push_str(",\"dur\":");
                    micros(&mut out, r.dur_ns());
                }
                SpanKind::Instant => {
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    micros(&mut out, r.start.as_nanos());
                }
            }
            out.push_str(",\"pid\":1,\"tid\":");
            push_u64(&mut out, r.pid);
            out.push_str(",\"args\":{\"id\":");
            push_u64(&mut out, i as u64 + 1);
            out.push_str(",\"parent\":");
            push_u64(&mut out, r.parent.0);
            for (k, v) in &r.args {
                out.push(',');
                json_string(&mut out, g.symbols.get(*k));
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Exports one JSON object per span (newline-delimited), with integer
    /// nanosecond timestamps. Deterministic and streaming, like the Chrome
    /// export.
    pub fn export_jsonl(&self) -> String {
        let g = self.inner.lock();
        let mut out = String::with_capacity(g.rows.len() * 160);
        for (i, r) in g.rows.iter().enumerate() {
            out.push_str("{\"id\":");
            push_u64(&mut out, i as u64 + 1);
            out.push_str(",\"parent\":");
            push_u64(&mut out, r.parent.0);
            out.push_str(",\"kind\":");
            out.push_str(match r.kind {
                SpanKind::Span => "\"span\"",
                SpanKind::Instant => "\"instant\"",
            });
            out.push_str(",\"name\":");
            json_string(&mut out, g.symbols.get(r.name));
            out.push_str(",\"cat\":");
            json_string(&mut out, g.symbols.get(r.cat));
            out.push_str(",\"proc\":");
            json_string(&mut out, g.symbols.get(r.proc_name));
            out.push_str(",\"pid\":");
            push_u64(&mut out, r.pid);
            out.push_str(",\"start_ns\":");
            push_u64(&mut out, r.start.as_nanos());
            out.push_str(",\"end_ns\":");
            push_u64(&mut out, r.end.unwrap_or(r.start).as_nanos());
            out.push_str(",\"args\":{");
            for (j, (k, v)) in r.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, g.symbols.get(*k));
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("}}\n");
        }
        out
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(spans={})", self.len())
    }
}

/// Appends `v`'s decimal digits through a stack buffer — no `format!`
/// machinery, no intermediate `String`.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ascii"));
}

/// Writes a nanosecond count as microseconds with nanosecond decimals
/// (`123.456`), the unit Chrome traces expect.
fn micros(out: &mut String, ns: u64) {
    push_u64(out, ns / 1_000);
    let frac = ns % 1_000;
    if frac != 0 {
        out.push('.');
        out.push((b'0' + (frac / 100) as u8) as char);
        out.push((b'0' + (frac / 10 % 10) as u8) as char);
        out.push((b'0' + (frac % 10) as u8) as char);
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.push_str("\\u00");
                out.push(HEX[(c as usize >> 4) & 0xf] as char);
                out.push(HEX[c as usize & 0xf] as char);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_nest_and_export() {
        let t = Tracer::new();
        let root = t.begin(SimTime::from_millis(1), 3, "client", SpanId::NONE, "call", "dso");
        let child = t.begin(SimTime::from_millis(2), 4, "server", root, "exec", "dso");
        t.annotate(child, "obj", "AtomicLong/x");
        t.end(child, SimTime::from_millis(3));
        t.end(root, SimTime::from_millis(4));
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, SpanId(1));
        assert_eq!(spans[1].parent, SpanId(1));
        assert_eq!(spans[1].duration(), Duration::from_millis(1));
        let chrome = t.export_chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.contains("\"obj\":\"AtomicLong/x\""));
        let jsonl = t.export_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"start_ns\":1000000"));
    }

    #[test]
    fn open_span_exports_zero_duration() {
        let t = Tracer::new();
        let id = t.begin(SimTime::from_micros(5), 1, "p", SpanId::NONE, "open", "x");
        assert!(t.spans()[0].end.is_none());
        assert_eq!(t.spans()[0].duration(), Duration::ZERO);
        // Ending twice keeps the first end.
        t.end(id, SimTime::from_micros(9));
        t.end(id, SimTime::from_micros(50));
        assert_eq!(t.spans()[0].end, Some(SimTime::from_micros(9)));
    }

    #[test]
    fn ids_allocate_in_order_and_none_is_ignored() {
        let t = Tracer::new();
        let a = t.begin(SimTime::ZERO, 1, "p", SpanId::NONE, "a", "c");
        let b = t.instant(SimTime::ZERO, 1, "p", a, "b", "c");
        assert_eq!((a, b), (SpanId(1), SpanId(2)));
        t.end(SpanId::NONE, SimTime::from_secs(1)); // no-op
        t.annotate(SpanId::NONE, "k", "v"); // no-op
        t.annotate(SpanId(99), "k", "v"); // unknown: no-op
        assert_eq!(t.len(), 2);
        assert_eq!(t.spans_named("b").len(), 1);
        assert_eq!(t.spans()[1].kind, SpanKind::Instant);
        assert_eq!(t.spans()[1].end, Some(SimTime::ZERO));
    }

    #[test]
    fn exports_are_deterministic_for_same_inputs() {
        let build = || {
            let t = Tracer::new();
            let a = t.begin(SimTime::from_nanos(1500), 2, "p-a", SpanId::NONE, "alpha", "c");
            t.annotate(a, "k", "line\n\"quoted\"");
            t.end(a, SimTime::from_nanos(2750));
            t.instant(SimTime::from_nanos(2000), 7, "p-b", a, "beta", "c");
            (t.export_chrome_json(), t.export_jsonl())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn ctx_api_records_spans_and_metrics() {
        use crate::{MetricsRegistry, Sim};
        let mut sim = Sim::new(1);
        let tracer = Tracer::new();
        let metrics = MetricsRegistry::new();
        sim.set_tracer(&tracer);
        sim.set_metrics(&metrics);
        sim.spawn("worker", |ctx| {
            let root = ctx.span_begin("outer", "test");
            let prev = ctx.set_trace_ctx(TraceCtx::under(root));
            assert_eq!(prev, TraceCtx::root());
            ctx.sleep(Duration::from_millis(2));
            let inner = ctx.span_begin("inner", "test");
            ctx.sleep(Duration::from_millis(3));
            ctx.span_end(inner);
            ctx.span_end(root);
            ctx.metric_incr("ops");
            ctx.metric_record("lat", Duration::from_millis(5));
        });
        sim.run_until_idle().expect_quiescent();
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[1].start, SimTime::from_millis(2));
        assert_eq!(spans[1].end, Some(SimTime::from_millis(5)));
        assert_eq!(spans[0].proc_name, "worker");
        assert_eq!(metrics.counter_value("ops"), 1);
        assert_eq!(metrics.histogram("lat").count(), 1);
    }

    #[test]
    fn ctx_api_is_noop_without_installation() {
        use crate::Sim;
        let mut sim = Sim::new(2);
        sim.spawn("worker", |ctx| {
            let id = ctx.span_begin("nothing", "test");
            assert!(id.is_none());
            ctx.span_end(id);
            ctx.span_annotate(id, "k", "v");
            assert!(ctx.span_instant("tick", "test").is_none());
            ctx.metric_incr("ops");
            assert!(ctx.tracer().is_none());
            assert!(ctx.metrics().is_none());
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn stack_buffer_integer_writer_matches_display() {
        for v in [0u64, 1, 9, 10, 999, 1_000, 123_456_789, u64::MAX] {
            let mut s = String::new();
            push_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
        // The Chrome µs formatter: trailing .000 omitted, zero-padded frac.
        let cases =
            [(0u64, "0"), (1_000, "1"), (1_500, "1.500"), (123_456, "123.456"), (7, "0.007")];
        for (ns, want) in cases {
            let mut s = String::new();
            micros(&mut s, ns);
            assert_eq!(s, want, "ns={ns}");
        }
    }
}
