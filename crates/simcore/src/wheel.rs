//! The kernel's event queue: a hierarchical timing wheel over a slab
//! arena, with a small overflow heap for far-future timers.
//!
//! # Why not a binary heap?
//!
//! The original queue was `BinaryHeap<Reverse<EventEntry>>`: every push
//! and pop is O(log n) comparator traffic over boxed entries, and every
//! entry is a fresh heap allocation. At the hundreds of millions of
//! events the macro-serving scenarios schedule, both costs dominate the
//! kernel profile. The wheel makes push O(1), pop amortized O(1) for the
//! dense-timer common case, and — together with the [`Slab`] free list —
//! allocation-free in steady state.
//!
//! # Structure
//!
//! Virtual time is bucketed into *ticks* of 2^[`TICK_SHIFT`] ns (1.024 µs).
//! Six levels of 64 slots each cover `64^6` ticks (~19.5 hours of virtual
//! time) relative to the wheel's cursor; each level-`k` slot spans `64^k`
//! ticks. An event lands in the level whose slot span matches the highest
//! bit in which its tick differs from the cursor (the hashed hierarchical
//! scheme of the Varghese & Lauck paper and the Linux/Tokio timer wheels).
//! Draining a higher-level slot *cascades* its events down; draining a
//! level-0 slot *stages* its events into a sorted front run. Events more
//! than the wheel range ahead wait in a small `BinaryHeap` and migrate in
//! as the cursor approaches. Per-level occupancy bitmaps make "next
//! non-empty slot" one `trailing_zeros` per level, so idle regions are
//! skipped in O(levels), not O(ticks).
//!
//! # Exact ordering
//!
//! The simulator's determinism contract is total `(time, seq)` order, not
//! tick order. Ticks only *group* events: a staged front run is sorted by
//! exact `(time, seq)` before delivery, and a push that lands at or
//! before the cursor (e.g. a zero-latency send at the current instant) is
//! merge-inserted into the front run at its exact position. Pop order is
//! therefore byte-identical to the old binary heap's.
//!
//! # Sharding seam
//!
//! The wheel is a plain value owned by the kernel state — one per
//! simulation today, one per shard tomorrow: nothing in here touches
//! global state, and handles are dense `u32`s. See DESIGN.md, "Kernel
//! internals".

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::slab::{Slab, NIL};
use crate::time::SimTime;

/// log2 of the tick length in nanoseconds (2^10 = 1.024 µs per tick).
const TICK_SHIFT: u32 = 10;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; beyond `64^LEVELS` ticks events overflow to
/// the far-future heap.
const LEVELS: usize = 6;
/// The wheel's range in ticks, relative to the cursor.
const RANGE: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

fn tick_of(t: SimTime) -> u64 {
    t.as_nanos() >> TICK_SHIFT
}

struct Node<T> {
    time: SimTime,
    seq: u64,
    /// Next node in the same slot list (slot lists are unordered; order is
    /// imposed when the slot is staged). Doubles as free-list link inside
    /// the slab.
    next: u32,
    payload: T,
}

struct Level {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    /// Head of each slot's intrusive singly-linked list.
    slots: [u32; SLOTS],
}

impl Level {
    fn new() -> Level {
        Level { occupied: 0, slots: [NIL; SLOTS] }
    }
}

/// Allocation accounting for the event queue, for zero-allocation
/// assertions and the kernel bench report (see `Sim::event_queue_stats`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EventQueueStats {
    /// Arena nodes created fresh (each one was a real allocation inside
    /// the slab's backing `Vec`). Plateaus at the high-water mark of
    /// simultaneously pending events.
    pub allocated_nodes: u64,
    /// Pushes served from the free list — no heap traffic.
    pub recycled_pushes: u64,
    /// Arena high-water mark (total slots).
    pub capacity: usize,
    /// Events currently pending.
    pub len: usize,
    /// Events parked in the far-future overflow heap.
    pub overflow_len: usize,
}

/// A hierarchical timing wheel delivering `(time, seq, payload)` entries
/// in exact ascending `(time, seq)` order.
///
/// `peek`/`pop` take `&mut self`: finding the next entry may advance the
/// wheel cursor and stage a slot (pure internal bookkeeping — the set of
/// pending entries and their delivery order never change because of it).
pub struct TimingWheel<T> {
    slab: Slab<Node<T>>,
    levels: [Level; LEVELS],
    /// All wheel/overflow entries have tick ≥ cursor; everything earlier
    /// has been staged into `front` or delivered.
    cursor: u64,
    /// Staged entries, sorted *descending* by `(time, seq)` so the next
    /// one to deliver is `front.last()`. Capacity is reused across runs.
    front: Vec<u32>,
    /// Entries more than [`RANGE`] ticks ahead of the cursor.
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    len: usize,
}

impl<T> TimingWheel<T> {
    /// An empty queue.
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            slab: Slab::new(),
            levels: std::array::from_fn(|_| Level::new()),
            cursor: 0,
            front: Vec::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocation and occupancy accounting.
    pub fn stats(&self) -> EventQueueStats {
        EventQueueStats {
            allocated_nodes: self.slab.allocated(),
            recycled_pushes: self.slab.recycled(),
            capacity: self.slab.capacity(),
            len: self.len,
            overflow_len: self.overflow.len(),
        }
    }

    /// Schedules `payload` at `(time, seq)`. `seq` values must be unique
    /// (the kernel hands out a fresh sequence number per event); `time`
    /// must not precede the last popped entry's time.
    pub fn push(&mut self, time: SimTime, seq: u64, payload: T) {
        let idx = self.slab.insert(Node { time, seq, next: NIL, payload });
        self.len += 1;
        let tk = tick_of(time);
        if tk < self.cursor {
            // At or before the tick currently being delivered (e.g. a
            // zero-latency send at the current instant): merge into the
            // staged run at its exact (time, seq) position.
            self.stage_sorted(idx);
        } else {
            self.insert_wheel(idx, tk);
        }
    }

    /// The next entry in `(time, seq)` order, without removing it.
    pub fn peek(&mut self) -> Option<(SimTime, u64, &T)> {
        if self.front.is_empty() {
            self.advance();
        }
        self.front.last().map(|&idx| {
            let n = self.slab.get(idx);
            (n.time, n.seq, &n.payload)
        })
    }

    /// Removes and returns the next entry in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.front.is_empty() {
            self.advance();
        }
        let idx = self.front.pop()?;
        self.len -= 1;
        let n = self.slab.remove(idx);
        Some((n.time, n.seq, n.payload))
    }

    /// Inserts a sorted-position entry into the staged front run.
    fn stage_sorted(&mut self, idx: u32) {
        let slab = &self.slab;
        let key = {
            let n = slab.get(idx);
            (n.time, n.seq)
        };
        // `front` is descending; find the first position whose key is not
        // greater than ours and insert before it.
        let pos = self.front.partition_point(|&i| {
            let n = slab.get(i);
            (n.time, n.seq) > key
        });
        self.front.insert(pos, idx);
    }

    /// Hangs `idx` (tick `tk`, `tk >= cursor`) off the right wheel slot,
    /// or parks it in the overflow heap when out of range.
    fn insert_wheel(&mut self, idx: u32, tk: u64) {
        debug_assert!(tk >= self.cursor);
        let masked = tk ^ self.cursor;
        if masked >= RANGE {
            let n = self.slab.get(idx);
            self.overflow.push(Reverse((n.time, n.seq, idx)));
            return;
        }
        let level =
            if masked == 0 { 0 } else { ((63 - masked.leading_zeros()) / LEVEL_BITS) as usize };
        let slot = ((tk >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let lv = &mut self.levels[level];
        self.slab.get_mut(idx).next = lv.slots[slot];
        lv.slots[slot] = idx;
        lv.occupied |= 1 << slot;
    }

    /// Detaches a slot's list, returning its head and clearing occupancy.
    fn take_slot(&mut self, level: usize, slot: usize) -> u32 {
        let lv = &mut self.levels[level];
        lv.occupied &= !(1 << slot);
        std::mem::replace(&mut lv.slots[slot], NIL)
    }

    /// Advances the cursor to the next pending entry and stages its
    /// level-0 slot into `front`. No-op when nothing is pending.
    fn advance(&mut self) {
        debug_assert!(self.front.is_empty());
        loop {
            // Migrate far-future entries that have come into range.
            while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
                if tick_of(t) ^ self.cursor < RANGE {
                    let Reverse((_, _, idx)) = self.overflow.pop().expect("peeked overflow");
                    self.insert_wheel(idx, tick_of(t));
                } else {
                    break;
                }
            }
            // The earliest occupied slot across levels, by slot-start tick.
            let mut best: Option<(usize, usize, u64)> = None;
            for level in 0..LEVELS {
                let lv = &self.levels[level];
                if lv.occupied == 0 {
                    continue;
                }
                let shift = LEVEL_BITS * level as u32;
                let pos = (self.cursor >> shift) & (SLOTS as u64 - 1);
                // Every occupied slot sits at or past the cursor's
                // position in this level (earlier slots were drained
                // before the cursor moved past them).
                let ahead = lv.occupied & !((1u64 << pos) - 1);
                debug_assert!(ahead != 0, "stale occupancy behind the cursor");
                let slot = ahead.trailing_zeros() as u64;
                let window = !((1u64 << (shift + LEVEL_BITS)).wrapping_sub(1));
                let start = (self.cursor & window) | (slot << shift);
                // On equal start prefer the *higher* level: cascading it
                // first merges its same-tick events down into the level-0
                // slot before that slot is staged, keeping exact order.
                if best.is_none_or(|(_, _, b)| start <= b) {
                    best = Some((level, slot as usize, start));
                }
            }
            match best {
                None => {
                    // Wheel empty: jump to the overflow's region (the next
                    // loop iteration migrates it in), or finish.
                    match self.overflow.peek() {
                        Some(&Reverse((t, _, _))) => self.cursor = tick_of(t),
                        None => return,
                    }
                }
                Some((0, slot, start)) => {
                    // Stage the level-0 slot: one tick's worth of entries,
                    // sorted by exact (time, seq), descending for pop().
                    let mut idx = self.take_slot(0, slot);
                    while idx != NIL {
                        self.front.push(idx);
                        idx = self.slab.get(idx).next;
                    }
                    let slab = &self.slab;
                    self.front.sort_unstable_by(|&a, &b| {
                        let (na, nb) = (slab.get(a), slab.get(b));
                        (nb.time, nb.seq).cmp(&(na.time, na.seq))
                    });
                    self.cursor = start + 1;
                    return;
                }
                Some((level, slot, start)) => {
                    // Cascade a higher-level slot down.
                    debug_assert!(start >= self.cursor);
                    self.cursor = start;
                    let mut idx = self.take_slot(level, slot);
                    while idx != NIL {
                        let node = self.slab.get(idx);
                        let (next, tk) = (node.next, tick_of(node.time));
                        self.insert_wheel(idx, tk);
                        idx = next;
                    }
                }
            }
        }
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T> fmt::Debug for TimingWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .field("staged", &self.front.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Reference model: the old binary-heap queue.
    #[derive(Default)]
    struct HeapQueue {
        heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    }

    impl HeapQueue {
        fn push(&mut self, time: SimTime, seq: u64, payload: u32) {
            self.heap.push(Reverse((time, seq, payload)));
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            self.heap.pop().map(|Reverse(e)| e)
        }
    }

    /// A deterministic xorshift so the test needs no RNG plumbing.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn matches_binary_heap_across_magnitudes() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut heap = HeapQueue::default();
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        let mut now = SimTime::ZERO;
        for round in 0..5000u32 {
            // Mixed-magnitude delays: same-instant up to hours ahead.
            let delay_ns = match rng.next() % 7 {
                0 => 0,
                1 => rng.next() % 1_000,             // sub-tick
                2 => rng.next() % 100_000,           // µs scale
                3 => rng.next() % 100_000_000,       // ms scale
                4 => rng.next() % 10_000_000_000,    // seconds
                5 => rng.next() % 7_200_000_000_000, // hours
                _ => 80_000_000_000_000 + rng.next() % 1_000_000_000, // overflow range
            };
            let t = now + Duration::from_nanos(delay_ns);
            wheel.push(t, round as u64, round);
            heap.push(t, round as u64, round);
            // Interleave pops to move the cursor.
            if rng.next().is_multiple_of(3) {
                let got = wheel.pop();
                let want = heap.pop();
                assert_eq!(
                    got, want,
                    "pop divergence at round {round} (wheel {got:?} vs heap {want:?})"
                );
                if let Some((t, _, _)) = got {
                    now = t;
                }
            }
        }
        while let Some(want) = heap.pop() {
            let got = wheel.pop().expect("wheel has as many entries as the heap");
            assert_eq!(got, want);
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn same_instant_pushes_merge_into_the_staged_run() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let t = SimTime::from_micros(100);
        wheel.push(t, 0, 0);
        wheel.push(t + Duration::from_nanos(5), 2, 2);
        // Stage the run, deliver the first entry.
        assert_eq!(wheel.pop(), Some((t, 0, 0)));
        // A zero-latency send at the delivered instant must order between
        // the staged entries.
        wheel.push(t, 1, 1);
        assert_eq!(wheel.pop(), Some((t, 1, 1)));
        assert_eq!(wheel.pop(), Some((t + Duration::from_nanos(5), 2, 2)));
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn peek_is_stable_and_matches_pop() {
        let mut wheel: TimingWheel<&'static str> = TimingWheel::new();
        wheel.push(SimTime::from_millis(5), 1, "late");
        wheel.push(SimTime::from_micros(1), 0, "early");
        assert_eq!(
            wheel.peek().map(|(t, s, &p)| (t, s, p)),
            Some((SimTime::from_micros(1), 0, "early"))
        );
        assert_eq!(
            wheel.peek().map(|(t, s, &p)| (t, s, p)),
            Some((SimTime::from_micros(1), 0, "early"))
        );
        assert_eq!(wheel.pop(), Some((SimTime::from_micros(1), 0, "early")));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(5), 1, "late")));
    }

    #[test]
    fn far_future_timers_park_in_overflow_and_migrate_back() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        // ~23 hours ahead: beyond the wheel range from cursor 0.
        let far = SimTime::from_secs(23 * 3600);
        wheel.push(far, 0, 7);
        assert_eq!(wheel.stats().overflow_len, 1);
        wheel.push(SimTime::from_millis(1), 1, 1);
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(1), 1, 1)));
        assert_eq!(wheel.pop(), Some((far, 0, 7)));
        assert_eq!(wheel.stats().overflow_len, 0);
    }

    #[test]
    fn steady_state_timer_churn_is_allocation_free() {
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        // Warm up: a working set of 64 in-flight timers across magnitudes,
        // churned long enough to touch every level's slot vectors.
        let warm = |wheel: &mut TimingWheel<u64>, now: &mut SimTime, seq: &mut u64, n: u64| {
            for i in 0..n {
                let d = 1 + (i % 13) * 700_001 + (i % 7) * 1_000_000_000;
                wheel.push(*now + Duration::from_nanos(d), *seq, i);
                *seq += 1;
                if wheel.len() > 64 {
                    let (t, _, _) = wheel.pop().expect("pending");
                    *now = t;
                }
            }
        };
        warm(&mut wheel, &mut now, &mut seq, 10_000);
        let allocated = wheel.stats().allocated_nodes;
        warm(&mut wheel, &mut now, &mut seq, 100_000);
        let after = wheel.stats();
        assert_eq!(
            after.allocated_nodes, allocated,
            "steady-state scheduling allocated fresh nodes: {after:?}"
        );
        assert!(after.recycled_pushes > 100_000, "churn must ride the free list: {after:?}");
    }
}
