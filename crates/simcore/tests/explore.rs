//! Regression tests for the schedule explorer and runtime detectors.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::explore::{explore_exhaustive, explore_seeds, replay_seed, Check, ScheduleFailure};
use simcore::sync::LocalBarrier;
use simcore::Sim;

/// The classic crossed-barrier bug: each process is the missing party of
/// the barrier the *other* one is stuck on. Every schedule deadlocks, and
/// the report must name the wait-for cycle and the reproducing seed.
fn crossed_barriers(sim: &mut Sim) -> Check {
    let a = LocalBarrier::new(2);
    let b = LocalBarrier::new(2);
    let (a2, b2) = (a.clone(), b.clone());
    sim.spawn("alpha", move |ctx| {
        a.wait(ctx);
        b.wait(ctx);
    });
    sim.spawn("beta", move |ctx| {
        b2.wait(ctx);
        a2.wait(ctx);
    });
    Box::new(|| Ok(()))
}

#[test]
fn crossed_barriers_deadlock_under_every_schedule() {
    let report = explore_seeds(7, 8, crossed_barriers);
    assert_eq!(report.explored, 8);
    assert_eq!(report.failures.len(), 8, "no schedule can save a crossed barrier");
    for fs in &report.failures {
        let ScheduleFailure::Deadlock(dl) = &fs.failure else {
            panic!("expected deadlock, got {:?}", fs.failure);
        };
        // The report names the ring of mutually-waiting processes...
        assert!(!dl.cycles.is_empty(), "wait-for cycle expected:\n{dl}");
        let cycle_names: Vec<&str> = dl.cycles[0].iter().map(|p| p.name.as_str()).collect();
        assert!(cycle_names.contains(&"alpha") && cycle_names.contains(&"beta"), "{dl}");
        // ...the primitive each is stuck on (task-backtrace style)...
        let rendered = dl.to_string();
        assert!(rendered.contains("barrier"), "{rendered}");
        assert!(rendered.contains("wait-for cycle"), "{rendered}");
        // ...and the reproduction recipe.
        assert!(rendered.contains(&format!("seed {}", fs.seed)), "{rendered}");
    }
}

#[test]
fn failing_seed_reproduces_on_replay() {
    let report = explore_seeds(0, 3, crossed_barriers);
    let first = &report.failures[0];
    let again = replay_seed(first.seed, crossed_barriers).expect("still deadlocks");
    let (ScheduleFailure::Deadlock(a), ScheduleFailure::Deadlock(b)) = (&first.failure, &again)
    else {
        panic!("expected deadlocks");
    };
    // Same seed, same scheduler: byte-identical postmortems.
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn exhaustive_explorer_enumerates_distinct_schedules() {
    // Two racers bump a counter; with two runnable processes at t=0 the
    // first decision has two options, so DFS must branch at least once.
    let scenario = |sim: &mut Sim| -> Check {
        let hits: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        for name in ["left", "right"] {
            let hits = hits.clone();
            sim.spawn(name, move |ctx| {
                ctx.sleep(Duration::from_micros(1));
                hits.lock().push(name);
            });
        }
        let hits2 = hits.clone();
        Box::new(move || if hits2.lock().len() == 2 { Ok(()) } else { Err("lost a racer".into()) })
    };
    let report = explore_exhaustive(0, 32, 8, scenario);
    report.expect_clean();
    assert!(report.explored > 1, "expected branching, got {} schedule(s)", report.explored);
}

#[test]
fn fifo_default_records_only_first_choices() {
    // The default scheduler is FIFO: runs are reproducible and every
    // recorded decision picked index 0.
    let trace_of = || {
        let mut sim = Sim::new(42);
        let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let order = order.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.sleep(Duration::from_micros(5));
                order.lock().push(i);
            });
        }
        sim.run_until_idle();
        let decisions = sim.decision_trace();
        drop(sim);
        (Arc::try_unwrap(order).expect("procs joined").into_inner(), decisions)
    };
    let (order_a, trace_a) = trace_of();
    let (order_b, trace_b) = trace_of();
    assert_eq!(order_a, order_b, "FIFO runs must be identical");
    assert_eq!(trace_a, trace_b);
    assert!(!trace_a.is_empty(), "four simultaneous wakeups must record decisions");
    assert!(trace_a.iter().all(|d| d.choice == 0), "FIFO always picks the front");
}
