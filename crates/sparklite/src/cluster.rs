//! The mini-Spark cluster: one driver service and `E` executors, each a
//! multi-core VM. Stages run one task per partition (data-local), results
//! are collected ("reduced") at the driver — the BSP pattern whose
//! per-iteration scheduling and shuffle costs Crucial's DSO updates avoid
//! (§6.2.2).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simcore::{Addr, CpuHost, Ctx, Msg, Request, Sim};

use crate::cost::SparkCostModel;

/// A task body: `(partition, broadcast, args) -> (result, cpu work)`.
///
/// The closure does the *real* math on the (scaled-down) partition data
/// and reports the *virtual* CPU time this would take at paper scale; the
/// executor charges that time on its cores.
pub type TaskFn = Arc<dyn Fn(&[u8], &[u8], &[u8]) -> (Vec<u8>, Duration) + Send + Sync>;

/// Registry of stage functions, shared by all executors.
#[derive(Clone, Default)]
pub struct TaskRegistry {
    tasks: Arc<Mutex<HashMap<String, TaskFn>>>,
}

impl TaskRegistry {
    /// Creates an empty registry.
    pub fn new() -> TaskRegistry {
        TaskRegistry::default()
    }

    /// Registers a stage function.
    pub fn register<F>(&self, name: &str, f: F)
    where
        F: Fn(&[u8], &[u8], &[u8]) -> (Vec<u8>, Duration) + Send + Sync + 'static,
    {
        self.tasks.lock().insert(name.to_string(), Arc::new(f));
    }

    fn get(&self, name: &str) -> Option<TaskFn> {
        self.tasks.lock().get(name).cloned()
    }
}

impl fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.tasks.lock().keys().cloned().collect();
        f.debug_struct("TaskRegistry").field("tasks", &names).finish()
    }
}

// Driver protocol.
#[derive(Debug)]
enum DriverReq {
    LoadPartitions(Vec<Vec<u8>>),
    Broadcast(Vec<u8>),
    RunStage { task: String, args: Vec<u8> },
}

#[derive(Debug)]
enum DriverResp {
    Loaded,
    Broadcasted,
    StageDone(Vec<Vec<u8>>),
}

// Executor protocol.
#[derive(Debug)]
enum ExecMsg {
    Store { partition_id: usize, data: Vec<u8> },
    SetBroadcast { data: Vec<u8>, ack: Addr },
    Run { task: String, partition_id: usize, args: Vec<u8>, done: Addr },
}

#[derive(Debug)]
struct BroadcastAck;

#[derive(Debug)]
struct TaskDone {
    partition_id: usize,
    result: Vec<u8>,
}

/// Handle used by the application ("driver program") to submit work.
#[derive(Clone, Debug)]
pub struct SparkHandle {
    driver: Addr,
    net: simcore::LatencyModel,
}

impl SparkHandle {
    /// Tells the deadlock detector this process is about to block on the
    /// driver (stages can park indefinitely behind executor work).
    fn annotate(&self, ctx: &mut Ctx, op: &str) {
        ctx.annotate_wait(
            self.driver.into_raw(),
            simcore::WaitKind::Call,
            "spark-driver",
            format!("SparkHandle::{op}"),
        );
    }

    /// Distributes partitions round-robin across executors.
    pub fn load_partitions(&self, ctx: &mut Ctx, partitions: Vec<Vec<u8>>) {
        let lat = self.net.sample(ctx.rng());
        self.annotate(ctx, "load_partitions");
        match ctx.call(self.driver, DriverReq::LoadPartitions(partitions), lat) {
            DriverResp::Loaded => {}
            other => panic!("protocol: expected Loaded, got {other:?}"),
        }
    }

    /// Broadcasts a value to every executor (returns once all acked).
    pub fn broadcast(&self, ctx: &mut Ctx, data: Vec<u8>) {
        let lat = self.net.sample(ctx.rng());
        self.annotate(ctx, "broadcast");
        match ctx.call(self.driver, DriverReq::Broadcast(data), lat) {
            DriverResp::Broadcasted => {}
            other => panic!("protocol: expected Broadcasted, got {other:?}"),
        }
    }

    /// Runs one task per partition; returns results ordered by partition.
    pub fn run_stage(&self, ctx: &mut Ctx, task: &str, args: Vec<u8>) -> Vec<Vec<u8>> {
        let lat = self.net.sample(ctx.rng());
        self.annotate(ctx, "run_stage");
        match ctx.call(self.driver, DriverReq::RunStage { task: task.to_string(), args }, lat) {
            DriverResp::StageDone(r) => r,
            other => panic!("protocol: expected StageDone, got {other:?}"),
        }
    }
}

/// Starts a cluster with `executors` nodes of `cores_per_executor` cores.
pub fn spawn_cluster(
    sim: &Sim,
    executors: u32,
    cores_per_executor: u32,
    cost: SparkCostModel,
    registry: TaskRegistry,
) -> SparkHandle {
    assert!(executors >= 1, "need at least one executor");
    let mut exec_addrs = Vec::new();
    for e in 0..executors {
        let inbox = sim.mailbox(&format!("exec-{e}"));
        exec_addrs.push(inbox);
        let cpu = CpuHost::spawn(sim, &format!("exec-{e}"), cores_per_executor);
        let cost2 = cost.clone();
        let reg2 = registry.clone();
        sim.spawn_daemon(&format!("exec-{e}"), move |ctx| {
            executor_loop(ctx, inbox, cpu, cost2, reg2);
        });
    }
    let driver = sim.mailbox("spark-driver");
    let net = cost.net;
    let cost2 = cost;
    sim.spawn_daemon("spark-driver", move |ctx| {
        driver_loop(ctx, driver, exec_addrs, cost2);
    });
    SparkHandle { driver, net }
}

fn driver_loop(ctx: &mut Ctx, inbox: Addr, executors: Vec<Addr>, cost: SparkCostModel) {
    let mut partition_homes: Vec<Addr> = Vec::new(); // partition id -> executor
    loop {
        let (reply_to, req) = ctx.recv(inbox).take::<Request>().take::<DriverReq>();
        match req {
            DriverReq::LoadPartitions(parts) => {
                partition_homes.clear();
                for (i, data) in parts.into_iter().enumerate() {
                    let home = executors[i % executors.len()];
                    partition_homes.push(home);
                    let lat = cost.net.sample(ctx.rng())
                        + Duration::from_secs_f64(data.len() as f64 / cost.shuffle_bandwidth);
                    ctx.send(home, Msg::new(ExecMsg::Store { partition_id: i, data }), lat);
                }
                let lat = cost.net.sample(ctx.rng());
                ctx.reply(reply_to, DriverResp::Loaded, lat);
            }
            DriverReq::Broadcast(data) => {
                let ack_box = ctx.mailbox("bcast-acks");
                for &e in &executors {
                    let lat = cost.net.sample(ctx.rng())
                        + Duration::from_secs_f64(data.len() as f64 / cost.shuffle_bandwidth);
                    ctx.send(
                        e,
                        Msg::new(ExecMsg::SetBroadcast { data: data.clone(), ack: ack_box }),
                        lat,
                    );
                }
                for _ in 0..executors.len() {
                    let _ = ctx.recv(ack_box).take::<BroadcastAck>();
                }
                ctx.close_mailbox(ack_box);
                let lat = cost.net.sample(ctx.rng());
                ctx.reply(reply_to, DriverResp::Broadcasted, lat);
            }
            DriverReq::RunStage { task, args } => {
                // Stage setup (DAG scheduling, closure serialization).
                ctx.compute(cost.stage_overhead);
                let n = partition_homes.len();
                let done_box = ctx.mailbox("stage-results");
                for (pid, &home) in partition_homes.iter().enumerate() {
                    // Task dispatch is serialized at the driver.
                    ctx.compute(cost.per_task_dispatch);
                    let lat = cost.net.sample(ctx.rng());
                    ctx.send(
                        home,
                        Msg::new(ExecMsg::Run {
                            task: task.clone(),
                            partition_id: pid,
                            args: args.clone(),
                            done: done_box,
                        }),
                        lat,
                    );
                }
                // Collect + merge results (the "reduce" the paper charges
                // Spark for at every iteration).
                let mut results: Vec<Option<Vec<u8>>> = vec![None; n];
                for _ in 0..n {
                    let done = ctx.recv(done_box).take::<TaskDone>();
                    ctx.compute(
                        cost.per_result_merge + cost.merge_per_byte * done.result.len() as u32,
                    );
                    results[done.partition_id] = Some(done.result);
                }
                ctx.close_mailbox(done_box);
                let results = results.into_iter().map(|r| r.expect("all results in")).collect();
                let lat = cost.net.sample(ctx.rng());
                ctx.reply(reply_to, DriverResp::StageDone(results), lat);
            }
        }
    }
}

fn executor_loop(
    ctx: &mut Ctx,
    inbox: Addr,
    cpu: CpuHost,
    cost: SparkCostModel,
    registry: TaskRegistry,
) {
    let partitions: Arc<Mutex<HashMap<usize, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let broadcast: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let mut job_seq = 0u64;
    loop {
        match ctx.recv(inbox).take::<ExecMsg>() {
            ExecMsg::Store { partition_id, data } => {
                partitions.lock().insert(partition_id, data);
            }
            ExecMsg::SetBroadcast { data, ack } => {
                *broadcast.lock() = data;
                let lat = cost.net.sample(ctx.rng());
                ctx.send(ack, Msg::new(BroadcastAck), lat);
            }
            ExecMsg::Run { task, partition_id, args, done } => {
                // Each task runs as its own job on the executor's cores:
                // more tasks than cores => waves, like Spark task slots.
                let f = registry.get(&task).expect("task registered");
                let cpu = cpu.clone();
                let partitions = partitions.clone();
                let broadcast = broadcast.clone();
                let cost = cost.clone();
                job_seq += 1;
                ctx.spawn(&format!("task-{task}-{partition_id}-{job_seq}"), move |tc| {
                    let (result, work) = {
                        let parts = partitions.lock();
                        let part = parts.get(&partition_id).map(Vec::as_slice).unwrap_or(&[]);
                        let bc = broadcast.lock();
                        f(part, &bc, &args)
                    };
                    cpu.compute(tc, work);
                    let lat = cost.net.sample(tc.rng())
                        + Duration::from_secs_f64(result.len() as f64 / cost.shuffle_bandwidth);
                    tc.send(done, Msg::new(TaskDone { partition_id, result }), lat);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_registry() -> TaskRegistry {
        let reg = TaskRegistry::new();
        // Sums partition bytes, plus the broadcast byte value.
        reg.register("sum", |part, bcast, _args| {
            let s: u64 = part.iter().map(|&b| b as u64).sum::<u64>()
                + bcast.first().copied().unwrap_or(0) as u64;
            (simcore::codec::to_bytes(&s).expect("encode"), Duration::from_millis(10))
        });
        reg
    }

    #[test]
    fn stage_runs_one_task_per_partition_in_order() {
        let mut sim = Sim::new(31);
        let spark = spawn_cluster(&sim, 3, 2, SparkCostModel::default(), sum_registry());
        sim.spawn("driver-app", move |ctx| {
            spark.load_partitions(ctx, vec![vec![1, 1], vec![2], vec![3], vec![4]]);
            spark.broadcast(ctx, vec![10]);
            let results = spark.run_stage(ctx, "sum", Vec::new());
            let sums: Vec<u64> =
                results.iter().map(|r| simcore::codec::from_bytes(r).expect("decode")).collect();
            assert_eq!(sums, vec![12, 12, 13, 14]);
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn tasks_share_executor_cores_in_waves() {
        let mut sim = Sim::new(32);
        let reg = TaskRegistry::new();
        reg.register("slow", |_p, _b, _a| (Vec::new(), Duration::from_secs(1)));
        // 1 executor with 2 cores, 4 partitions of 1s work => 2 waves ≈ 2s.
        let spark = spawn_cluster(&sim, 1, 2, SparkCostModel::default(), reg);
        sim.spawn("driver-app", move |ctx| {
            spark.load_partitions(ctx, vec![vec![0]; 4]);
            let t0 = ctx.now();
            let _ = spark.run_stage(ctx, "slow", Vec::new());
            let took = (ctx.now() - t0).as_secs_f64();
            assert!((1.9..2.6).contains(&took), "expected ~2s of waves, took {took}");
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn stage_overhead_is_paid_even_for_trivial_work() {
        let mut sim = Sim::new(33);
        let reg = TaskRegistry::new();
        reg.register("nop", |_p, _b, _a| (Vec::new(), Duration::ZERO));
        let cost = SparkCostModel::default();
        let overhead = cost.stage_overhead;
        let spark = spawn_cluster(&sim, 2, 4, cost, reg);
        sim.spawn("driver-app", move |ctx| {
            spark.load_partitions(ctx, vec![vec![0]; 8]);
            let t0 = ctx.now();
            let _ = spark.run_stage(ctx, "nop", Vec::new());
            let took = ctx.now() - t0;
            assert!(took >= overhead, "stage time {took:?} must include the scheduling overhead");
            assert!(took < Duration::from_millis(200), "but not much more: {took:?}");
        });
        sim.run_until_idle().expect_quiescent();
    }

    #[test]
    fn broadcast_reaches_all_executors() {
        let mut sim = Sim::new(34);
        let spark = spawn_cluster(&sim, 4, 1, SparkCostModel::default(), sum_registry());
        sim.spawn("driver-app", move |ctx| {
            spark.load_partitions(ctx, vec![vec![0]; 4]);
            spark.broadcast(ctx, vec![5]);
            let sums: Vec<u64> = spark
                .run_stage(ctx, "sum", Vec::new())
                .iter()
                .map(|r| simcore::codec::from_bytes(r).expect("decode"))
                .collect();
            assert_eq!(sums, vec![5, 5, 5, 5], "every executor saw the broadcast");
        });
        sim.run_until_idle().expect_quiescent();
    }
}
