//! Cost parameters of the mini-Spark cluster: scheduling overheads,
//! network, and EC2/EMR pricing for the Table 3 comparison.

use std::time::Duration;

use simcore::LatencyModel;

/// Timing model of the BSP engine, calibrated so the per-iteration
/// overhead over pure compute lands where the paper's EMR cluster does
/// (Fig. 4: ~0.1–0.2 s/iteration for logistic regression's small reduce;
/// Fig. 5: ~1.1 s/iteration for k-means' larger shuffle — see
/// EXPERIMENTS.md for the fit).
#[derive(Clone, Debug)]
pub struct SparkCostModel {
    /// Fixed driver-side cost to launch a stage (DAG scheduling, closure
    /// serialization, stage setup).
    pub stage_overhead: Duration,
    /// Driver-side cost to dispatch each task of a stage (serialized at
    /// the driver, as in Spark's scheduler loop).
    pub per_task_dispatch: Duration,
    /// One-way network latency inside the cluster.
    pub net: LatencyModel,
    /// Bandwidth for broadcast and result/shuffle traffic, bytes/s.
    pub shuffle_bandwidth: f64,
    /// Fixed per-result cost of merging one task's output at the driver
    /// (deserialize + combine).
    pub per_result_merge: Duration,
    /// Per-byte cost of merging task output at the driver.
    pub merge_per_byte: Duration,
}

impl Default for SparkCostModel {
    fn default() -> Self {
        SparkCostModel {
            stage_overhead: Duration::from_millis(60),
            per_task_dispatch: Duration::from_micros(700),
            net: LatencyModel::uniform(Duration::from_micros(120), 0.2),
            shuffle_bandwidth: 120.0 * 1024.0 * 1024.0,
            per_result_merge: Duration::from_micros(300),
            merge_per_byte: Duration::from_nanos(10),
        }
    }
}

/// Cluster pricing: on-demand m5.2xlarge plus the EMR surcharge
/// (§6.2.3's "0.15 cents per second" for the 11-node cluster).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterPricing {
    /// Dollars per node-hour (EC2 + EMR).
    pub per_node_hour: f64,
    /// Number of nodes billed (master + core nodes).
    pub nodes: u32,
}

impl Default for ClusterPricing {
    fn default() -> Self {
        ClusterPricing { per_node_hour: 0.384 + 0.096, nodes: 11 }
    }
}

impl ClusterPricing {
    /// Dollars per second for the whole cluster.
    pub fn per_second(&self) -> f64 {
        self.per_node_hour * self.nodes as f64 / 3600.0
    }

    /// Dollar cost of running the cluster for `d`.
    pub fn cost_for(&self, d: Duration) -> f64 {
        self.per_second() * d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emr_cluster_price_matches_paper() {
        let p = ClusterPricing::default();
        // §6.2.3: ~0.15 cents/second.
        let cents_per_s = p.per_second() * 100.0;
        assert!(
            (cents_per_s - 0.15).abs() < 0.01,
            "cluster at {cents_per_s} cents/s, paper says 0.15"
        );
    }

    #[test]
    fn cost_scales_with_time() {
        let p = ClusterPricing::default();
        let one_min = p.cost_for(Duration::from_secs(60));
        assert!((one_min - 60.0 * p.per_second()).abs() < 1e-12);
    }
}
