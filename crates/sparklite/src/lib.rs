//! # sparklite — the Spark/EMR baseline
//!
//! A miniature BSP engine standing in for the paper's Apache Spark on EMR
//! comparator (§6.2.2): a driver service schedules one task per partition
//! onto multi-core executors, broadcasts shared values, and collects
//! ("reduces") task results — paying per-stage scheduling, dispatch and
//! shuffle costs each iteration. Those recurring costs are precisely what
//! Crucial's fine-grained DSO updates avoid, and what Figs. 4–5 measure.
//!
//! Also hosts [`LocalVm`], the single-machine multi-threaded baseline of
//! Fig. 3 and Fig. 7c.
//!
//! ## Example
//!
//! ```
//! use simcore::Sim;
//! use sparklite::{spawn_cluster, SparkCostModel, TaskRegistry};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(1);
//! let registry = TaskRegistry::new();
//! registry.register("count", |part, _bcast, _args| {
//!     let n = part.len() as u64;
//!     (simcore::codec::to_bytes(&n).unwrap(), Duration::from_millis(1))
//! });
//! let spark = spawn_cluster(&sim, 2, 4, SparkCostModel::default(), registry);
//! sim.spawn("driver-app", move |ctx| {
//!     spark.load_partitions(ctx, vec![vec![0; 10], vec![0; 20]]);
//!     let counts: Vec<u64> = spark
//!         .run_stage(ctx, "count", Vec::new())
//!         .iter()
//!         .map(|r| simcore::codec::from_bytes(r).unwrap())
//!         .collect();
//!     assert_eq!(counts, vec![10, 20]);
//! });
//! sim.run_until_idle().expect_quiescent();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
mod cost;
mod vm;

pub use cluster::{spawn_cluster, SparkHandle, TaskFn, TaskRegistry};
pub use cost::{ClusterPricing, SparkCostModel};
pub use vm::LocalVm;
