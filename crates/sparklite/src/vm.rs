//! Single-machine baselines: a VM with a fixed number of cores running
//! plain threads (Fig. 3's m5.2xlarge / m5.4xlarge curves, and the POJO
//! Santa Claus solution's host).

use simcore::{CpuHost, Ctx, Sim};
use std::time::Duration;

/// A virtual machine: `threads` contend for `cores` under processor
/// sharing, so compute slows down once threads exceed cores.
#[derive(Clone, Debug)]
pub struct LocalVm {
    cpu: CpuHost,
    cores: u32,
}

impl LocalVm {
    /// Creates a VM with `cores` cores.
    pub fn new(sim: &Sim, name: &str, cores: u32) -> LocalVm {
        LocalVm { cpu: CpuHost::spawn(sim, name, cores), cores }
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Performs `work` of CPU time, sharing the machine's cores.
    pub fn compute(&self, ctx: &mut Ctx, work: Duration) {
        self.cpu.compute(ctx, work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn saturation_beyond_core_count() {
        // Fig. 3's shape in miniature: scale-up stays ~1 up to the core
        // count, then degrades as threads/cores.
        for (threads, expected_slowdown) in [(4u32, 1.0f64), (8, 1.0), (16, 2.0), (32, 4.0)] {
            let mut sim = Sim::new(41);
            let vm = LocalVm::new(&sim, "m5.2xlarge", 8);
            let end = Arc::new(Mutex::new(0.0f64));
            for t in 0..threads {
                let vm = vm.clone();
                let end = end.clone();
                sim.spawn(&format!("t{t}"), move |ctx| {
                    vm.compute(ctx, Duration::from_secs(1));
                    let mut e = end.lock();
                    *e = e.max(ctx.now().as_secs_f64());
                });
            }
            sim.run_until_idle().expect_quiescent();
            let took = *end.lock();
            assert!(
                (took - expected_slowdown).abs() < 0.05,
                "{threads} threads on 8 cores took {took}s, expected {expected_slowdown}"
            );
        }
    }
}
