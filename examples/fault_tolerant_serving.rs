//! Persistent state under failures (§6.4, Fig. 8): a replicated k-means
//! model serves inferences while a storage node crashes and a fresh one
//! joins.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_serving
//! ```

use std::time::Duration;

use crucial_ml::inference::{run_inference_serving, InferenceConfig};

fn main() {
    let cfg = InferenceConfig {
        seed: 3,
        threads: 24,
        centroids: 24,
        dims: 100,
        rf: 2,
        dso_nodes: 3,
        dso_workers_per_node: 1,
        duration: Duration::from_secs(36),
        crash_at: Some(Duration::from_secs(12)),
        add_at: Some(Duration::from_secs(24)),
        per_inference_compute: Duration::ZERO,
        ..InferenceConfig::default()
    };
    println!(
        "serving a {}-centroid model (rf = {}) from {} DSO nodes with {} functions;",
        cfg.centroids, cfg.rf, cfg.dso_nodes, cfg.threads
    );
    println!("crash at t = 12 s, fresh node joins at t = 24 s\n");

    let report = run_inference_serving(&cfg);
    let peak = report.per_second.iter().map(|(_, n)| *n).max().unwrap_or(1).max(1);
    for (s, n) in &report.per_second {
        let bar = "#".repeat((n * 50 / peak) as usize);
        let marker = match *s {
            12 => "  <- node crash",
            24 => "  <- node joins",
            _ => "",
        };
        println!("t={s:>3}s {n:>7}/s |{bar}{marker}");
    }
    println!(
        "\nsteady {:.0}/s, after crash {:.0}/s, after join {:.0}/s (paper: −30% after the crash, restored after the join)",
        report.mean_rate(6, 12),
        report.mean_rate(15, 24),
        report.mean_rate(30, 36),
    );
}
