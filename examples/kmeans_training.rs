//! k-means training on serverless functions (Listing 2 of the paper),
//! compared against the mini-Spark baseline on the same data.
//!
//! ```sh
//! cargo run --release --example kmeans_training
//! ```

use crucial_ml::cost::DatasetScale;
use crucial_ml::kmeans::{run_crucial_kmeans, run_spark_kmeans, KMeansConfig};

fn main() {
    let cfg = KMeansConfig {
        seed: 42,
        workers: 20,
        k: 25,
        iterations: 10,
        sample_points: 100,
        dims: 100,
        scale: DatasetScale { total_points: 695_000 * 20, dims: 100, partitions: 20 },
        include_load: true,
        dso_nodes: 1,
        memory_mb: 2048,
    };

    println!("training k-means (k = {}, {} workers, 10 iterations)…", cfg.k, cfg.workers);
    let crucial = run_crucial_kmeans(&cfg);
    println!(
        "crucial:  iterations {:>8.2?}  total {:>8.2?}  cost ${:.3}",
        crucial.iteration_phase, crucial.total, crucial.cost_dollars
    );
    let spark = run_spark_kmeans(&cfg);
    println!(
        "spark:    iterations {:>8.2?}  total {:>8.2?}  cost ${:.3}",
        spark.iteration_phase, spark.total, spark.cost_dollars
    );

    println!("\nconvergence (within-cluster SSE per iteration):");
    println!("  iter  crucial        spark");
    for (i, (c, s)) in crucial.sse_per_iteration.iter().zip(&spark.sse_per_iteration).enumerate() {
        println!("  {:>4}  {c:<13.1}  {s:<13.1}", i + 1);
    }
    let speedup = spark.iteration_phase.as_secs_f64() / crucial.iteration_phase.as_secs_f64();
    println!(
        "\ncrucial's iteration phase is {speedup:.2}x faster than spark (paper: ~1.45x at k=25)"
    );
}
