//! Synchronizing a map phase five different ways (§6.3.1, Fig. 6):
//! polling object storage, polling a KV store, queue polling, DSO
//! futures, and aggregating inside the DSO layer.
//!
//! ```sh
//! cargo run --release --example map_reduce_sync
//! ```

use std::time::Duration;

use crucial_apps::mapsync::{run_mapsync, MapSyncConfig, SyncStrategy};

fn main() {
    let cfg = MapSyncConfig {
        seed: 5,
        mappers: 25,
        points: 50_000_000,
        poll_interval: Duration::from_millis(500),
    };
    println!(
        "map phase: {} mappers × {} Monte Carlo points, then a sum reduce\n",
        cfg.mappers, cfg.points
    );
    println!("{:<26} {:>14} {:>14}  pi", "strategy", "sync time", "total");
    for strategy in SyncStrategy::ALL {
        let r = run_mapsync(strategy, &cfg);
        println!(
            "{:<26} {:>14.2?} {:>14.2?}  {:.4}",
            strategy.label(),
            r.sync_time,
            r.total_time,
            r.estimate
        );
    }
    println!("\npaper ordering: SQS slowest; S3 slow & variable; KV polling mid;");
    println!("futures fast (push); auto-reduce fastest (the reduce phase disappears).");
}
