//! Quickstart: Listing 1 of the paper — a Monte Carlo estimation of π
//! with cloud threads and one shared counter.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crucial::{join_all, AtomicLong, CrucialConfig, Deployment, FnEnv, RunResult, Runnable, Sim};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Points each cloud thread draws (paper scale: 100 M; the simulator
/// charges the full virtual compute time but samples a capped subset).
const ITERATIONS: u64 = 100_000_000;
const N_THREADS: usize = 16;

/// Listing 1's `PiEstimator implements Runnable`.
#[derive(Serialize, Deserialize)]
struct PiEstimator {
    counter: AtomicLong, // @Shared(key = "counter")
}

impl Runnable for PiEstimator {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        // Draw a capped real sample, extrapolate the hit count, and charge
        // the full virtual compute time.
        let real = ITERATIONS.min(50_000);
        let mut inside = 0u64;
        for _ in 0..real {
            let x: f64 = env.ctx().rng().random_range(0.0..1.0);
            let y: f64 = env.ctx().rng().random_range(0.0..1.0);
            if x * x + y * y <= 1.0 {
                inside += 1;
            }
        }
        let count = ((inside as f64 / real as f64) * ITERATIONS as f64) as i64;
        env.compute(crucial_ml::cost::monte_carlo_cost(ITERATIONS));
        let (ctx, dso) = env.dso();
        self.counter.add_and_get(ctx, dso, count).map_err(|e| e.to_string())?;
        Ok(())
    }
}

fn main() {
    // Deploy the stack: DSO tier + FaaS platform + object store.
    let mut sim = Sim::new(7);
    let dep = Deployment::start(&sim, CrucialConfig::default());
    dep.register::<PiEstimator>();
    let threads = dep.threads();
    let dso = dep.dso_handle();

    sim.spawn("main", move |ctx| {
        let counter = AtomicLong::new("counter");
        let runnables: Vec<PiEstimator> =
            (0..N_THREADS).map(|_| PiEstimator { counter: counter.clone() }).collect();
        let t0 = ctx.now();
        // threads.forEach(Thread::start); threads.forEach(Thread::join);
        let handles = threads.start_all(ctx, &runnables);
        join_all(ctx, handles).expect("cloud threads succeed");
        let mut cli = dso.connect();
        let inside = counter.get(ctx, &mut cli).expect("dso reachable");
        let pi = 4.0 * inside as f64 / (N_THREADS as u64 * ITERATIONS) as f64;
        println!("pi ≈ {pi:.6}  (error {:+.6})", pi - std::f64::consts::PI);
        println!(
            "{N_THREADS} cloud threads × {ITERATIONS} points in {:?} of simulated time",
            ctx.now() - t0
        );
    });
    sim.run_until_idle().expect_quiescent();
}
