//! The Santa Claus concurrency problem (§6.3.3) in its three flavours:
//! plain local objects, `@Shared` DSO objects, and full cloud threads.
//!
//! ```sh
//! cargo run --release --example santa_claus
//! ```

use crucial_apps::santa::{run_santa_cloud, run_santa_dso, run_santa_local, SantaConfig};

fn main() {
    let cfg = SantaConfig::default(); // 15 deliveries, 10 elves, 9 reindeer
    println!(
        "Santa Claus: {} toy deliveries, {} elf consultations…",
        cfg.deliveries,
        cfg.elf_groups()
    );

    let local = run_santa_local(&cfg);
    println!("single machine (POJO):   {:?}", local.completion);

    let dso = run_santa_dso(&cfg);
    let overhead = 100.0 * (dso.completion.as_secs_f64() / local.completion.as_secs_f64() - 1.0);
    println!(
        "@Shared objects (DSO):   {:?}  ({overhead:+.1}% vs local; paper: ≈ +8%)",
        dso.completion
    );

    let cloud = run_santa_cloud(&cfg);
    let overhead = 100.0 * (cloud.completion.as_secs_f64() / local.completion.as_secs_f64() - 1.0);
    println!(
        "cloud threads:           {:?}  ({overhead:+.1}% vs local; paper: ≈ DSO)",
        cloud.completion
    );
}
