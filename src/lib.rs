//! # crucial-repro — a Rust reproduction of *Crucial* (Middleware '19)
//!
//! This umbrella crate re-exports the whole stack so the top-level
//! examples and integration tests read naturally. The layered crates:
//!
//! * [`simcore`] — deterministic discrete-event simulation kernel;
//! * [`dso`] — the distributed shared-object layer (the paper's
//!   contribution): consistent hashing, method-call shipping, SMR over
//!   Skeen total-order multicast, view-synchronous membership;
//! * [`faas`] — the AWS-Lambda-like platform;
//! * [`cloudstore`] — S3/Redis/SQS/SNS baselines;
//! * [`crucial`] — the programming model (`CloudThread`, `Runnable`,
//!   typed shared objects);
//! * [`sparklite`] — the Spark/EMR baseline engine;
//! * [`crucial_ml`] / [`crucial_apps`] — the paper's applications.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture
//! and the experiment index.

#![warn(missing_docs)]

pub use cloudstore;
pub use crucial;
pub use crucial_apps;
pub use crucial_ml;
pub use dso;
pub use faas;
pub use simcore;
pub use sparklite;
