//! Elastic control-plane tests: graceful drain conservation, admission
//! control (shedding + client retries + linearizability under shed-heavy
//! histories), and determinism of the autoscaler's decisions.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dso::api;
use dso::verify::{check_unit_counter, Op};
use dso::{AdmissionConfig, DsoCluster, DsoConfig, ObjectRegistry};
use simcore::explore::{explore_seeds, Check};
use simcore::{MetricsRegistry, Sim, SimTime};

/// Scale-out → scale-in round trip: every object and every per-object
/// version must survive the drain. Counters are unreplicated (`rf = 1`),
/// so the drained node's transfer-out is the *only* copy — losing it
/// would show up as a wrong value or version here.
#[test]
fn drain_conserves_objects_and_versions() {
    const K: usize = 24;
    let mut sim = Sim::new(11);
    let registry = MetricsRegistry::new();
    sim.set_metrics(&registry);
    let mut cluster =
        DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();

    // Counter `c{i}` is incremented exactly `i + 1` times, so value and
    // version are both `i + 1` — a per-object fingerprint.
    let h = handle.clone();
    sim.spawn("writer", move |ctx| {
        let mut cli = h.connect();
        for i in 0..K {
            let c = api::AtomicLong::new(&format!("c{i}"));
            for _ in 0..=i {
                c.increment_and_get(ctx, &mut cli).expect("dso reachable");
            }
        }
    });
    sim.run_until(SimTime::from_secs(2));

    cluster.add_node(&sim);
    sim.run_until(SimTime::from_secs(4));
    assert_eq!(cluster.live_nodes(), 3);

    let newest = cluster.newest_live().expect("a live node");
    cluster.remove_node(&sim, newest);
    sim.run_until(SimTime::from_secs(8));
    assert_eq!(cluster.live_nodes(), 2);
    assert_eq!(registry.counter_value("dso.drains"), 1);

    let audited = Arc::new(Mutex::new(false));
    let flag = audited.clone();
    sim.spawn("auditor", move |ctx| {
        let mut cli = handle.connect();
        for i in 0..K {
            let c = api::AtomicLong::new(&format!("c{i}"));
            let v = c.get(ctx, &mut cli).expect("dso reachable");
            assert_eq!(v, (i + 1) as i64, "counter c{i} lost updates across the drain");
            assert_eq!(
                cli.observed_version(c.raw().object_ref()),
                (i + 1) as u64,
                "counter c{i}'s version was not conserved"
            );
        }
        *flag.lock() = true;
    });
    sim.run_until(SimTime::from_secs(10));
    assert!(*audited.lock(), "auditor must finish");
}

/// A config tight enough to shed must still complete every call: shed
/// responses take the client's backoff-and-retry path, not the error path.
#[test]
fn shed_requests_are_retried_by_the_client() {
    let mut sim = Sim::new(5);
    let registry = MetricsRegistry::new();
    sim.set_metrics(&registry);
    let cfg = DsoConfig::builder()
        .admission(Some(AdmissionConfig {
            rate: 400.0,
            burst: 4.0,
            max_queue_depth: 4,
            retry_after: Duration::from_millis(2),
        }))
        .max_retries(40)
        .build()
        .expect("valid config");
    let cluster = DsoCluster::start(&sim, 1, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let done = Arc::new(Mutex::new(0u32));
    for w in 0..8 {
        let handle = handle.clone();
        let done = done.clone();
        sim.spawn(&format!("worker-{w}"), move |ctx| {
            let mut cli = handle.connect();
            let c = api::AtomicLong::new("hot");
            for _ in 0..20 {
                c.increment_and_get(ctx, &mut cli).expect("sheds are retried, not failed");
            }
            *done.lock() += 1;
        });
    }
    sim.run_until_idle().expect_quiescent();
    assert_eq!(*done.lock(), 8, "every worker finished");
    assert!(registry.counter_value("dso.shed") > 0, "the tight config must actually shed");
    assert_eq!(
        registry.counter_value("dso.shed"),
        registry.counter_value("dso.overloaded"),
        "every shed response is observed (and retried) by a client"
    );
}

/// A shed-heavy history must still be linearizable: shedding rejects
/// requests *before* execution, so it must never duplicate or reorder the
/// increments that are admitted.
#[test]
fn linearizability_holds_on_shed_heavy_history() {
    let mut sim = Sim::new(17);
    let registry = MetricsRegistry::new();
    sim.set_metrics(&registry);
    let cfg = DsoConfig::builder()
        .admission(Some(AdmissionConfig {
            rate: 600.0,
            burst: 2.0,
            max_queue_depth: 3,
            retry_after: Duration::from_millis(1),
        }))
        .max_retries(60)
        .build()
        .expect("valid config");
    let cluster = DsoCluster::start(&sim, 2, cfg, ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let history: Arc<Mutex<Vec<Op>>> = Arc::new(Mutex::new(Vec::new()));
    for w in 0..6 {
        let handle = handle.clone();
        let history = history.clone();
        sim.spawn(&format!("inc-{w}"), move |ctx| {
            let mut cli = handle.connect();
            let c = api::AtomicLong::new("lin");
            for _ in 0..10 {
                let start = ctx.now();
                let value = c.increment_and_get(ctx, &mut cli).expect("dso reachable");
                history.lock().push(Op { start, end: ctx.now(), value });
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    let history = history.lock();
    assert_eq!(history.len(), 60);
    assert!(registry.counter_value("dso.shed") > 0, "history must actually be shed-heavy");
    check_unit_counter(&history).expect("shed-heavy history stays linearizable");
}

/// An over-admitted configuration (bucket far larger than the cluster can
/// serve) must degrade gracefully — slower, but no deadlock and no failed
/// calls — across schedules.
#[test]
fn over_admitted_config_degrades_gracefully() {
    let scenario = |sim: &mut Sim| -> Check {
        let cfg = DsoConfig::builder()
            .admission(Some(AdmissionConfig {
                rate: 1_000_000.0,
                burst: 1_000_000.0,
                max_queue_depth: 1_000_000,
                retry_after: Duration::from_millis(1),
            }))
            .build()
            .expect("valid config");
        let cluster = DsoCluster::start(sim, 1, cfg, ObjectRegistry::with_builtins());
        let handle = cluster.client_handle();
        let done = Arc::new(Mutex::new(0u32));
        for w in 0..6 {
            let handle = handle.clone();
            let done = done.clone();
            sim.spawn(&format!("w{w}"), move |ctx| {
                let mut cli = handle.connect();
                let c = api::AtomicLong::new("over");
                for _ in 0..8 {
                    c.increment_and_get(ctx, &mut cli).expect("dso reachable");
                }
                *done.lock() += 1;
            });
        }
        Box::new(move || {
            let _keep = cluster;
            let done = *done.lock();
            if done == 6 {
                Ok(())
            } else {
                Err(format!("only {done}/6 workers finished"))
            }
        })
    };
    explore_seeds(7, 8, scenario).expect_clean();
}
