//! Cross-crate integration tests: the whole stack — simulation kernel,
//! DSO tier, FaaS platform, programming model, applications — exercised
//! end to end.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simcore::Sim;

use crucial::{
    join_all, AtomicByteArray, CrucialConfig, Deployment, FnEnv, RetryPolicy, RunResult, Runnable,
    SharedFuture,
};
use crucial_apps::pi::run_pi_crucial;
use crucial_ml::cost::DatasetScale;
use crucial_ml::kmeans::{run_crucial_kmeans, run_local_kmeans, run_spark_kmeans, KMeansConfig};

#[test]
fn whole_stack_is_deterministic() {
    let a = run_pi_crucial(99, 12, 5_000_000);
    let b = run_pi_crucial(99, 12, 5_000_000);
    assert_eq!(a.estimate, b.estimate);
    assert_eq!(a.duration, b.duration);
    let c = run_pi_crucial(100, 12, 5_000_000);
    assert_ne!(a.duration, c.duration, "different seeds must differ");
}

#[test]
fn kmeans_substrates_converge_to_the_same_clustering() {
    let cfg = KMeansConfig {
        seed: 8,
        workers: 4,
        k: 3,
        iterations: 4,
        sample_points: 80,
        dims: 10,
        scale: DatasetScale { total_points: 200_000, dims: 10, partitions: 4 },
        include_load: false,
        dso_nodes: 1,
        memory_mb: 2048,
    };
    let crucial = run_crucial_kmeans(&cfg);
    let spark = run_spark_kmeans(&cfg);
    let local = run_local_kmeans(&cfg, 8);
    // Same data, same algorithm, same initial centroids: the crucial and
    // local SSE series must agree exactly (they evaluate pre-update).
    for (c, l) in crucial.sse_per_iteration.iter().zip(&local.sse_per_iteration) {
        assert!((c - l).abs() < 1e-6, "crucial {c} vs local {l}");
    }
    // Spark's series is evaluated post-update (MLlib's cost pass), so it
    // leads by one step; its final cost must be at or below crucial's.
    let c_last = *crucial.sse_per_iteration.last().expect("ran");
    let s_last = *spark.sse_per_iteration.last().expect("ran");
    assert!(s_last <= c_last * 1.001, "spark final SSE {s_last} vs crucial {c_last}");
}

/// Train (install) a replicated model through the full stack, crash a
/// storage node, and verify the model survives — §4.4 + §6.4 in one test.
#[derive(Serialize, Deserialize)]
struct ModelReader {
    centroids: u32,
    rf: u8,
    expected_len: usize,
    result: SharedFuture<bool>,
}

impl Runnable for ModelReader {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        let mut ok = true;
        for i in 0..self.centroids {
            let c = AtomicByteArray::persistent(&format!("m-{i}"), Vec::new(), self.rf);
            let (ctx, dso) = env.dso();
            let v = c.get(ctx, dso).map_err(|e| e.to_string())?;
            ok &= v.len() == self.expected_len;
        }
        let (ctx, dso) = env.dso();
        let _ = self.result.set(ctx, dso, &ok).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[test]
fn replicated_model_survives_node_crash_read_from_a_function() {
    let mut sim = Sim::new(17);
    let cfg = CrucialConfig { dso_nodes: 3, ..CrucialConfig::default() };
    let dep = Deployment::start(&sim, cfg);
    dep.register::<ModelReader>();
    let threads = dep.threads();
    let dso = dep.dso_handle();
    let outcome = Arc::new(Mutex::new(None::<bool>));
    let out2 = outcome.clone();
    let servers: Vec<_> = dep.dso.servers().to_vec();
    sim.spawn("trainer", move |ctx| {
        let mut cli = dso.connect();
        for i in 0..16 {
            let c = AtomicByteArray::persistent(&format!("m-{i}"), Vec::new(), 2);
            c.set(ctx, &mut cli, &vec![7u8; 800]).expect("install");
        }
        // Crash one storage node; rf = 2 tolerates it.
        servers[1].crash_from(ctx);
        ctx.sleep(Duration::from_secs(10)); // failure detection + rebalance
        let result: SharedFuture<bool> = SharedFuture::new("verdict");
        let reader =
            ModelReader { centroids: 16, rf: 2, expected_len: 800, result: result.clone() };
        let h = threads.start(ctx, &reader);
        h.join(ctx).expect("reader runs");
        *out2.lock() = Some(result.get(ctx, &mut cli).expect("verdict"));
    });
    sim.run_until_idle().expect_quiescent();
    assert_eq!(*outcome.lock(), Some(true), "model intact after the crash");
}

/// Futures are idempotent (`set` is write-once), so map workers can crash
/// and retry without corrupting the reduced result.
#[derive(Serialize, Deserialize)]
struct FlakyMapper {
    id: u32,
    out: SharedFuture<i64>,
}

impl Runnable for FlakyMapper {
    fn run(&mut self, env: &mut FnEnv<'_, '_>) -> RunResult {
        env.compute(Duration::from_millis(50));
        let value = (self.id as i64) * 10;
        let (ctx, dso) = env.dso();
        let _ = self.out.set(ctx, dso, &value).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[test]
fn flaky_functions_with_retries_produce_an_exact_reduce() {
    let mut sim = Sim::new(18);
    let mut cfg = CrucialConfig::default();
    cfg.faas.failure_rate = 0.4;
    let dep = Deployment::start(&sim, cfg);
    dep.register::<FlakyMapper>();
    let threads = dep.threads().with_retry(RetryPolicy::retries(25));
    let dso = dep.dso_handle();
    let sum = Arc::new(Mutex::new(0i64));
    let sum2 = sum.clone();
    const N: u32 = 12;
    sim.spawn("reducer", move |ctx| {
        let mappers: Vec<FlakyMapper> = (0..N)
            .map(|id| FlakyMapper { id, out: SharedFuture::new(&format!("out-{id}")) })
            .collect();
        let handles = threads.start_all(ctx, &mappers);
        join_all(ctx, handles).expect("all eventually succeed");
        let mut cli = dso.connect();
        let mut total = 0;
        for id in 0..N {
            let f: SharedFuture<i64> = SharedFuture::new(&format!("out-{id}"));
            total += f.get(ctx, &mut cli).expect("set exactly once");
        }
        *sum2.lock() = total;
    });
    sim.run_until_idle().expect_quiescent();
    // sum of id*10 for id in 0..12 = 660, exactly once each despite crashes.
    assert_eq!(*sum.lock(), 660);
}

#[test]
fn table4_reports_partial_port_effort() {
    let reports = crucial_apps::table4::table4();
    assert_eq!(reports.len(), 4);
    let names: Vec<&str> = reports.iter().map(|r| r.name).collect();
    assert!(names.contains(&"Monte Carlo"));
    assert!(names.contains(&"k-means"));
    for r in &reports {
        assert!(r.changed_lines < r.total_lines, "{}: port is not a rewrite", r.name);
    }
}
