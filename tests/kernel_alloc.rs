//! Counting-allocator proof that the kernel hot path (schedule → fire →
//! deliver) performs **zero heap allocations** in steady state.
//!
//! The event queue is a timing wheel over a slab arena with free-list
//! recycling, so once the arena and the kernel's queues have grown to the
//! workload's high-water mark, a sleep/wake cycle touches no allocator at
//! all. This test installs a counting `GlobalAlloc`, warms a timer-churn
//! simulation past every growth point, then asserts that continuing the
//! same churn allocates nothing.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crucial::Sim;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_timer_churn_allocates_nothing() {
    let mut sim = Sim::new(11);
    // Eight daemons sleeping on periods spanning sub-tick to milliseconds,
    // so the churn exercises several wheel levels (staging, cascades, and
    // same-instant wakes included: periods share common multiples).
    for (i, period_ns) in
        [700, 1_024, 3_000, 17_000, 65_536, 250_000, 1_000_000, 4_194_304].into_iter().enumerate()
    {
        sim.spawn_daemon(&format!("ticker-{i}"), move |ctx| loop {
            ctx.sleep(Duration::from_nanos(period_ns));
        });
    }
    // Warm-up: grow the slab arena, the wheel's staging buffer, the
    // runnable queue, and parking-lot's thread structures to steady state.
    sim.run_for(Duration::from_millis(50));
    let warm = sim.event_queue_stats();

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    sim.run_for(Duration::from_millis(100));
    COUNTING.store(false, Ordering::SeqCst);

    let counted = ALLOCS.load(Ordering::SeqCst);
    let after = sim.event_queue_stats();
    // Twice the warm-up's virtual time: thousands of schedule→fire→wake
    // cycles, every one served from recycled arena slots.
    assert!(
        after.recycled_pushes > warm.recycled_pushes + 1_000,
        "churn must ride the free list: {warm:?} -> {after:?}"
    );
    assert_eq!(
        after.allocated_nodes, warm.allocated_nodes,
        "steady state grew the event arena: {warm:?} -> {after:?}"
    );
    assert_eq!(counted, 0, "kernel hot path allocated {counted} times in steady state");
}
