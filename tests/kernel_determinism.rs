//! Golden-hash regression tests for the event-queue refactor.
//!
//! The kernel's event queue was swapped from a binary heap to a timing
//! wheel + slab arena; Fifo-scheduled runs must stay **byte-identical**
//! across that swap. These tests pin two workloads — the DSO cluster smoke
//! and the traced π estimation — to hashes recorded on the pre-refactor
//! kernel (commit 75bae45 lineage), on two seeds each. Any change to event
//! ordering, span allocation order, or export formatting shows up here as
//! a hash mismatch.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crucial::{AtomicLong, DsoCluster, DsoConfig, ObjectRegistry, Sim, Tracer};
use crucial_apps::pi::run_pi_crucial_with;

/// FNV-1a over bytes: stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The simexplore smoke workload under the default Fifo scheduler: a
/// 2-node cluster, 4 writers x 5 increments plus 2 readers x 4 reads on
/// one shared counter. Returns a fingerprint of the complete event order
/// as observed by the application: every op's (start, end, value) in
/// completion order, plus the final virtual time.
fn cluster_smoke_hash(seed: u64) -> u64 {
    let mut sim = Sim::new(seed);
    let cluster = DsoCluster::start(&sim, 2, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let log: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    for w in 0..4 {
        let handle = handle.clone();
        let log = log.clone();
        sim.spawn(&format!("writer-{w}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = AtomicLong::new("smoke-counter");
            for _ in 0..5 {
                let start = ctx.now();
                let value = counter.increment_and_get(ctx, &mut cli).expect("cluster reachable");
                let mut g = log.lock();
                g.push_str(&format!("w{w} {start} {} {value}\n", ctx.now()));
            }
        });
    }
    for r in 0..2 {
        let handle = handle.clone();
        let log = log.clone();
        sim.spawn(&format!("reader-{r}"), move |ctx| {
            let mut cli = handle.connect();
            let counter = AtomicLong::new("smoke-counter");
            for _ in 0..4 {
                let start = ctx.now();
                let value = counter.get(ctx, &mut cli).expect("cluster reachable");
                {
                    let mut g = log.lock();
                    g.push_str(&format!("r{r} {start} {} {value}\n", ctx.now()));
                }
                ctx.sleep(Duration::from_micros(200));
            }
        });
    }
    let out = sim.run_until_idle();
    out.expect_quiescent();
    let mut g = log.lock();
    g.push_str(&format!("end {}\n", out.time));
    fnv1a(g.as_bytes())
}

/// Traced π estimation: fingerprints of both exports, which encode span
/// allocation order (= execution order) and the exact export bytes.
fn trace_pi_hashes(seed: u64) -> (u64, u64) {
    let tracer = Tracer::new();
    let t2 = tracer.clone();
    let r = run_pi_crucial_with(seed, 4, 100_000, move |sim| {
        sim.set_tracer(&t2);
    });
    assert!(r.estimate > 2.0 && r.estimate < 4.5, "sane π estimate");
    (fnv1a(tracer.export_chrome_json().as_bytes()), fnv1a(tracer.export_jsonl().as_bytes()))
}

#[test]
fn cluster_smoke_matches_pre_refactor_golden_hashes() {
    assert_eq!(cluster_smoke_hash(0), GOLDEN_SMOKE_SEED0, "smoke seed 0 diverged");
    assert_eq!(cluster_smoke_hash(7), GOLDEN_SMOKE_SEED7, "smoke seed 7 diverged");
}

#[test]
fn traced_pi_matches_pre_refactor_golden_hashes() {
    assert_eq!(trace_pi_hashes(42), GOLDEN_PI_SEED42, "trace-pi seed 42 diverged");
    assert_eq!(trace_pi_hashes(1007), GOLDEN_PI_SEED1007, "trace-pi seed 1007 diverged");
}

// Recorded on the pre-refactor kernel (BinaryHeap event queue, String
// span records) so the wheel/slab/symbol-table refactor is pinned to it.
const GOLDEN_SMOKE_SEED0: u64 = 0xfb1e_7bd3_8c7b_1823;
const GOLDEN_SMOKE_SEED7: u64 = 0xc229_2e63_762f_0c68;
const GOLDEN_PI_SEED42: (u64, u64) = (8_345_115_569_156_730_087, 2_620_947_996_597_035_789);
const GOLDEN_PI_SEED1007: (u64, u64) = (10_008_093_687_855_188_003, 2_996_420_353_438_223_138);

/// Re-records the constants above (run with `--ignored --nocapture`) when
/// an *intentional* behavior change moves the goldens.
#[test]
#[ignore]
fn print_golden() {
    eprintln!("SMOKE0 {:#x}", cluster_smoke_hash(0));
    eprintln!("SMOKE7 {:#x}", cluster_smoke_hash(7));
    eprintln!("PI42 {:?}", trace_pi_hashes(42));
    eprintln!("PI1007 {:?}", trace_pi_hashes(1007));
}
