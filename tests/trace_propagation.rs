//! Trace-propagation tests: the causality token must survive every hop of
//! the stack — client call → per-attempt request → server-side execution
//! and replication rounds — and the exports must be deterministic.

use std::collections::HashMap;
use std::time::Duration;

use crucial::{
    AtomicLong, DsoCluster, DsoConfig, MetricsRegistry, ObjectRegistry, Sim, SimTime, SpanId,
    Tracer,
};

/// Child adjacency over a span snapshot: parent id → child span indexes.
fn children_of(spans: &[simcore::SpanRecord]) -> HashMap<SpanId, Vec<usize>> {
    let mut map: HashMap<SpanId, Vec<usize>> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if !s.parent.is_none() {
            map.entry(s.parent).or_default().push(i);
        }
    }
    map
}

/// Whether any descendant of `root` (exclusive) is named `name`.
fn has_descendant(
    spans: &[simcore::SpanRecord],
    kids: &HashMap<SpanId, Vec<usize>>,
    root: SpanId,
    name: &str,
) -> bool {
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        for &i in kids.get(&id).map(Vec::as_slice).unwrap_or_default() {
            if spans[i].name == name {
                return true;
            }
            stack.push(spans[i].id);
        }
    }
    false
}

/// A small replicated workload with the observability subsystem installed.
fn traced_counter_run(seed: u64) -> (Tracer, MetricsRegistry) {
    let mut sim = Sim::new(seed);
    let tracer = Tracer::new();
    let reg = MetricsRegistry::new();
    sim.set_tracer(&tracer);
    sim.set_metrics(&reg);
    let cluster = DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    for t in 0..4 {
        let handle = handle.clone();
        sim.spawn(&format!("w{t}"), move |ctx| {
            let mut cli = handle.connect();
            let c = AtomicLong::persistent(&format!("c{t}"), 0, 2);
            for _ in 0..5 {
                c.add_and_get(ctx, &mut cli, 1).expect("dso");
            }
        });
    }
    sim.run_until_idle().expect_quiescent();
    (tracer, reg)
}

#[test]
fn every_client_call_reaches_a_server_exec_span() {
    let (tracer, reg) = traced_counter_run(71);
    let spans = tracer.spans();
    let kids = children_of(&spans);
    let calls: Vec<_> = spans.iter().filter(|s| s.name == "dso.call").collect();
    assert_eq!(calls.len() as u64, reg.counter_value("dso.invokes"));
    assert!(!calls.is_empty());
    for call in &calls {
        assert!(
            has_descendant(&spans, &kids, call.id, "dso.exec"),
            "dso.call {:?} ({:?}) has no server-side dso.exec descendant",
            call.id,
            call.args,
        );
    }
    // Replicated writes additionally run an SMR round under the execution.
    assert!(reg.counter_value("dso.smr_rounds") > 0);
    let round = spans.iter().find(|s| s.name == "dso.smr_round").expect("rf=2 writes ran SMR");
    let parent = spans.iter().find(|s| s.id == round.parent).expect("round has a parent");
    assert_eq!(parent.name, "dso.attempt", "SMR rounds hang under the client attempt");
}

#[test]
fn retries_are_sibling_attempts_under_one_call() {
    let mut sim = Sim::new(72);
    let tracer = Tracer::new();
    let reg = MetricsRegistry::new();
    sim.set_tracer(&tracer);
    sim.set_metrics(&reg);
    let cluster = DsoCluster::start(&sim, 3, DsoConfig::default(), ObjectRegistry::with_builtins());
    let handle = cluster.client_handle();
    let servers: Vec<_> = cluster.servers().to_vec();
    // Warm the view, then crash a node and immediately call objects spread
    // over all three primaries: calls routed at the dead node time out and
    // retry, and each retry must be a *sibling* attempt under the same
    // logical dso.call span.
    sim.spawn("app", move |ctx| {
        let mut cli = handle.connect();
        for i in 0..6 {
            let c = AtomicLong::persistent(&format!("o{i}"), 0, 2);
            c.add_and_get(ctx, &mut cli, 1).expect("dso");
        }
        servers[0].crash_from(ctx);
        for i in 0..6 {
            let c = AtomicLong::persistent(&format!("o{i}"), 0, 2);
            c.add_and_get(ctx, &mut cli, 1).expect("survives one crash at rf=2");
        }
    });
    sim.run_until_idle().expect_quiescent();
    assert!(reg.counter_value("dso.retries") > 0, "no call ever hit the crashed node");
    let spans = tracer.spans();
    let kids = children_of(&spans);
    let retried = spans
        .iter()
        .filter(|s| s.name == "dso.call")
        .filter(|call| {
            let attempts = kids
                .get(&call.id)
                .map(|v| v.iter().filter(|&&i| spans[i].name == "dso.attempt").count())
                .unwrap_or(0);
            attempts >= 2
        })
        .count();
    assert!(retried > 0, "expected at least one dso.call with >= 2 sibling dso.attempt children");
}

#[test]
fn identically_seeded_runs_export_identical_traces() {
    let (a, ra) = traced_counter_run(99);
    let (b, rb) = traced_counter_run(99);
    assert_eq!(a.export_chrome_json(), b.export_chrome_json());
    assert_eq!(a.export_jsonl(), b.export_jsonl());
    assert_eq!(ra.summary(), rb.summary());
    // And the timestamps inside are virtual: the run is seconds of sim
    // time regardless of how fast the host executed it.
    let last_end = a.spans().iter().filter_map(|s| s.end).max().unwrap_or(SimTime::ZERO);
    assert!(last_end >= SimTime::ZERO + Duration::from_micros(1));
}
